//! The unified run-request type.
//!
//! A [`RunSpec`] is everything one simulation run needs beyond the
//! [`crate::Experiment`] it runs on: the [`Mode`], the self-correction
//! knobs, and whether to keep profiling artefacts. It is the request
//! vocabulary shared by every caller — the examples, the bench harness
//! and the `sctmd` batch service all speak `RunSpec` and get a
//! [`RunOutcome`] back — replacing the old fan of `Experiment::run_*`
//! entry points (kept as deprecated wrappers).

use crate::error::SctmError;
use crate::metrics::RunReport;
use crate::modes::{Mode, ProfileCapture};

/// One simulation request, ready for [`crate::Experiment::execute`].
///
/// Knob fields are `Option`: `None` inherits the experiment's own
/// setting, `Some` overrides it for this run only — a sweep can reuse
/// one `Experiment` while varying the loop knobs per request.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// How to simulate (carries the iteration cap for
    /// [`Mode::SelfCorrection`] and the epoch for [`Mode::Online`]).
    pub mode: Mode,
    /// Override of [`crate::Experiment::damping`] for this run.
    pub damping: Option<f64>,
    /// Override of [`crate::Experiment::factor_epsilon`] for this run.
    pub factor_epsilon: Option<f64>,
    /// Capture profiling artefacts (lifecycles + sampled gauge series)
    /// with an extra instrumented replay; the outcome's `profile` field
    /// is `Some`. Only meaningful for modes that produce a trace.
    pub profile: bool,
    /// Trace modes only: perform a *single* replay of the trace (the
    /// seeded one, or a fresh capture) instead of the full re-capture
    /// loop. For [`Mode::SelfCorrection`] this is one self-correcting
    /// gated pass — the old `run_with_trace` semantics; for the other
    /// trace modes a single replay is all there ever is, so the flag is
    /// implied.
    pub replay_only: bool,
    /// Override of [`crate::Experiment::incremental`] for this run:
    /// whether [`Mode::SelfCorrection`] reuses replay work across
    /// iterations via dirty-frontier checkpoints (bit-identical to the
    /// full pass either way; see DESIGN.md §11).
    pub incremental: Option<bool>,
    /// Classic-trace replay only: abort with
    /// [`SctmError::BudgetExhausted`] once the replay has advanced this
    /// many network batches without delivering every message. Open-loop
    /// replay on a detailed model past its saturation point can expand
    /// the timeline essentially without bound; the budget turns that
    /// pathological case into a typed error instead of a stall.
    pub replay_batch_budget: Option<u64>,
}

impl RunSpec {
    pub fn new(mode: Mode) -> Self {
        RunSpec {
            mode,
            damping: None,
            factor_epsilon: None,
            profile: false,
            replay_only: false,
            incremental: None,
            replay_batch_budget: None,
        }
    }

    /// The execution-driven reference run.
    pub fn exec_driven() -> Self {
        Self::new(Mode::ExecutionDriven)
    }

    /// Classic trace model: capture, replay timestamps verbatim.
    pub fn classic() -> Self {
        Self::new(Mode::ClassicTrace)
    }

    /// Oracle trace model: capture, full-causality replay.
    pub fn oracle() -> Self {
        Self::new(Mode::OracleTrace)
    }

    /// The paper's full self-correction loop, capped at `max_iters`.
    pub fn self_correction(max_iters: usize) -> Self {
        Self::new(Mode::SelfCorrection { max_iters })
    }

    /// The online epoch-correction variant.
    pub fn online(epoch: sctm_engine::time::SimTime) -> Self {
        Self::new(Mode::Online { epoch })
    }

    /// Override the damping weight for this run.
    pub fn with_damping(mut self, alpha: f64) -> Self {
        self.damping = Some(alpha);
        self
    }

    /// Override the factor-table convergence threshold for this run.
    pub fn with_factor_epsilon(mut self, eps: f64) -> Self {
        self.factor_epsilon = Some(eps);
        self
    }

    /// Request profiling artefacts alongside the report.
    pub fn profiled(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Replay once instead of running the full self-correction loop.
    pub fn replay_only(mut self) -> Self {
        self.replay_only = true;
        self
    }

    /// Enable or disable incremental (checkpointed) self-correction
    /// replay for this run.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = Some(on);
        self
    }

    /// Cap classic-trace replay at `batches` network batches; past the
    /// cap the run returns [`SctmError::BudgetExhausted`].
    pub fn with_replay_budget(mut self, batches: u64) -> Self {
        self.replay_batch_budget = Some(batches);
        self
    }

    /// Reject field combinations `execute` cannot honour. Called by
    /// [`crate::Experiment::execute`]; public so services can reject a
    /// request before queueing it.
    pub fn validate(&self) -> Result<(), SctmError> {
        let invalid = |m: String| Err(SctmError::InvalidSpec(m));
        match self.mode {
            Mode::SelfCorrection { max_iters: 0 } => {
                return invalid("self-correction needs max_iters >= 1".into());
            }
            Mode::Online { epoch } if epoch.as_ps() == 0 => {
                return invalid("online correction needs a non-zero epoch".into());
            }
            _ => {}
        }
        if let Some(a) = self.damping {
            if !(0.0..=1.0).contains(&a) {
                return invalid(format!("damping weight {a} outside [0, 1]"));
            }
        }
        if let Some(e) = self.factor_epsilon {
            if e.is_nan() || e < 0.0 {
                return invalid(format!("factor epsilon {e} must be >= 0"));
            }
        }
        let traceless = matches!(self.mode, Mode::ExecutionDriven | Mode::Online { .. });
        if self.profile && traceless {
            return invalid(format!(
                "profiling needs a trace mode, not {}",
                self.mode.label()
            ));
        }
        if self.replay_only && traceless {
            return invalid(format!(
                "replay_only needs a trace mode, not {}",
                self.mode.label()
            ));
        }
        match self.replay_batch_budget {
            Some(0) => {
                return invalid("replay batch budget must be >= 1".into());
            }
            Some(_) if !matches!(self.mode, Mode::ClassicTrace) => {
                return invalid(format!(
                    "replay budget applies to classic trace replay, not {}",
                    self.mode.label()
                ));
            }
            _ => {}
        }
        if self.incremental.is_some() && !matches!(self.mode, Mode::SelfCorrection { .. }) {
            return invalid(format!(
                "incremental replay applies to self-correction, not {}",
                self.mode.label()
            ));
        }
        Ok(())
    }
}

/// Everything [`crate::Experiment::execute`] produced: the aggregate
/// report, plus the profiling artefacts when the spec asked for them.
pub struct RunOutcome {
    pub report: RunReport,
    pub profile: Option<ProfileCapture>,
}

impl std::fmt::Debug for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOutcome")
            .field("report", &self.report)
            .field(
                "profile",
                &self.profile.as_ref().map(|p| p.lifecycles.len()),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::time::SimTime;

    #[test]
    fn default_specs_validate() {
        for mode in [
            Mode::ExecutionDriven,
            Mode::ClassicTrace,
            Mode::OracleTrace,
            Mode::SelfCorrection { max_iters: 4 },
            Mode::Online {
                epoch: SimTime::from_us(5),
            },
        ] {
            assert_eq!(RunSpec::new(mode).validate(), Ok(()), "{}", mode.label());
        }
    }

    #[test]
    fn rejects_zero_iteration_cap() {
        let err = RunSpec::new(Mode::SelfCorrection { max_iters: 0 })
            .validate()
            .unwrap_err();
        assert!(matches!(err, SctmError::InvalidSpec(_)), "{err}");
    }

    #[test]
    fn rejects_zero_epoch() {
        let err = RunSpec::new(Mode::Online {
            epoch: SimTime::ZERO,
        })
        .validate()
        .unwrap_err();
        assert!(matches!(err, SctmError::InvalidSpec(_)), "{err}");
    }

    #[test]
    fn rejects_out_of_range_knobs() {
        let m = Mode::SelfCorrection { max_iters: 2 };
        for bad in [-0.1, 1.5, f64::NAN] {
            let err = RunSpec::new(m).with_damping(bad).validate().unwrap_err();
            assert!(matches!(err, SctmError::InvalidSpec(_)), "damping {bad}");
        }
        for bad in [-1.0, f64::NAN] {
            let err = RunSpec::new(m)
                .with_factor_epsilon(bad)
                .validate()
                .unwrap_err();
            assert!(matches!(err, SctmError::InvalidSpec(_)), "epsilon {bad}");
        }
    }

    #[test]
    fn rejects_misapplied_budget_and_incremental() {
        let err = RunSpec::classic().with_replay_budget(0).validate();
        assert!(matches!(err, Err(SctmError::InvalidSpec(_))), "{err:?}");
        assert_eq!(
            RunSpec::classic().with_replay_budget(500).validate(),
            Ok(())
        );
        let err = RunSpec::oracle().with_replay_budget(500).validate();
        assert!(matches!(err, Err(SctmError::InvalidSpec(_))), "{err:?}");
        assert_eq!(
            RunSpec::self_correction(3)
                .with_incremental(false)
                .validate(),
            Ok(())
        );
        let err = RunSpec::classic().with_incremental(true).validate();
        assert!(matches!(err, Err(SctmError::InvalidSpec(_))), "{err:?}");
    }

    #[test]
    fn rejects_profiling_traceless_modes() {
        for mode in [
            Mode::ExecutionDriven,
            Mode::Online {
                epoch: SimTime::from_us(1),
            },
        ] {
            assert!(RunSpec::new(mode).profiled().validate().is_err());
            assert!(RunSpec::new(mode).replay_only().validate().is_err());
        }
    }
}
