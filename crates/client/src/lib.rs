//! A thin client for the `sctmd` line protocol.
//!
//! Sweep drivers before this crate hand-rolled a `TcpStream`, a
//! `BufReader`, and an ad-hoc busy-retry loop each time. This crate
//! folds those into three pieces:
//!
//! - **Connection pooling** — [`Client`] keeps a small pool of
//!   connections to one daemon; a call checks one out (dialing lazily
//!   up to the cap) and returns it on success. Connections that fail
//!   mid-call are dropped, not returned.
//! - **Request pipelining** — [`Client::pipeline`] writes a whole batch
//!   of request lines before reading any response. `sctmd` answers each
//!   connection strictly in request order (responses are queued per
//!   connection), so the batch comes back positionally matched while
//!   the server overlaps the actual simulation work across its
//!   scheduler workers.
//! - **Backpressure** — a `{"status":"busy","retry_after_ms":N}` line
//!   is not an error: the client sleeps the server-quoted `N` and
//!   resends, up to [`ClientOptions::max_busy_retries`]. Only after the
//!   retry budget is spent does it surface [`ClientError::Busy`].
//!
//! Everything here is std-only and every parse is total: malformed
//! server output becomes [`ClientError::Protocol`], never a panic —
//! `tests/protocol_fuzz.rs` drives arbitrary bytes through
//! [`parse_response`] to keep it that way.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

pub mod wire;

/// Typed failure of one client call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure (dial, write, read, unexpected EOF).
    Io(String),
    /// The server answered, but not with a frame this client
    /// understands (malformed JSON, missing status, bad field type).
    Protocol(String),
    /// The server kept answering busy past the retry budget. Carries
    /// the last `retry_after_ms` the server quoted.
    Busy { retry_after_ms: u64 },
    /// A structured `{"status":"error"}` response.
    Server { kind: String, message: String },
    /// A structured `{"status":"timeout"}` response: the request sat in
    /// the server queue past its deadline and was dropped unrun.
    Timeout { waited_ms: u64 },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "busy after retries (retry_after_ms={retry_after_ms})")
            }
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
            ClientError::Timeout { waited_ms } => {
                write!(f, "server-side queue timeout after {waited_ms}ms")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// One server response line, classified. `line` is always the verbatim
/// frame, so byte-identity tests can compare raw lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    Ok { line: String },
    Busy { retry_after_ms: u64 },
    Error { kind: String, message: String },
    Timeout { waited_ms: u64 },
}

/// Classify one response line. Total: any input maps to `Ok(Response)`
/// or `Err(ClientError::Protocol)`, never a panic.
pub fn parse_response(line: &str) -> Result<Response, ClientError> {
    let line = line.trim_end_matches(['\r', '\n']);
    let status = wire::json_str_field(line, "status")
        .ok_or_else(|| ClientError::Protocol(format!("no status field in: {}", clip(line))))?;
    match status.as_str() {
        "ok" => Ok(Response::Ok {
            line: line.to_string(),
        }),
        "busy" => Ok(Response::Busy {
            retry_after_ms: wire::json_u64_field(line, "retry_after_ms").ok_or_else(|| {
                ClientError::Protocol(format!("busy frame without retry_after_ms: {}", clip(line)))
            })?,
        }),
        "error" => Ok(Response::Error {
            kind: wire::json_str_field(line, "kind").unwrap_or_else(|| "unknown".into()),
            message: wire::json_str_field(line, "message").unwrap_or_default(),
        }),
        "timeout" => Ok(Response::Timeout {
            waited_ms: wire::json_u64_field(line, "waited_ms").unwrap_or(0),
        }),
        other => Err(ClientError::Protocol(format!("unknown status '{other}'"))),
    }
}

fn clip(line: &str) -> String {
    const MAX: usize = 120;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let mut end = MAX;
        while !line.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &line[..end])
    }
}

/// Knobs for [`Client`]; the defaults suit tests and local sweeps.
#[derive(Clone, Copy, Debug)]
pub struct ClientOptions {
    /// Socket read timeout per response line; 0 waits forever.
    pub io_timeout_ms: u64,
    /// Most connections kept pooled (and dialed) at once.
    pub pool_cap: usize,
    /// Resends after busy responses before giving up.
    pub max_busy_retries: u32,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            io_timeout_ms: 300_000,
            pool_cap: 4,
            max_busy_retries: 100,
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn dial(addr: &str, opts: &ClientOptions) -> Result<Conn, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        if opts.io_timeout_ms > 0 {
            stream
                .set_read_timeout(Some(Duration::from_millis(opts.io_timeout_ms)))
                .map_err(|e| ClientError::Io(e.to_string()))?;
        }
        stream
            .set_nodelay(true)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(Conn {
            reader: BufReader::new(stream),
        })
    }

    fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        let stream = self.reader.get_mut();
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut buf = String::new();
        match self.reader.read_line(&mut buf) {
            Ok(0) => Err(ClientError::Io("connection closed by server".into())),
            Ok(_) => Ok(buf),
            Err(e) => Err(ClientError::Io(e.to_string())),
        }
    }
}

/// A pooled client for one `sctmd` address. Cloneable across threads is
/// not needed — wrap in `Arc` and call concurrently; each call checks
/// out its own connection.
pub struct Client {
    addr: String,
    opts: ClientOptions,
    pool: Mutex<Vec<Conn>>,
}

impl Client {
    /// Create a client and eagerly dial one connection so obvious
    /// address errors fail here, not on the first call.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientOptions::default())
    }

    pub fn connect_with(addr: &str, opts: ClientOptions) -> Result<Client, ClientError> {
        let first = Conn::dial(addr, &opts)?;
        Ok(Client {
            addr: addr.to_string(),
            opts,
            pool: Mutex::new(vec![first]),
        })
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn checkout(&self) -> Result<Conn, ClientError> {
        let pooled = {
            let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            pool.pop()
        };
        match pooled {
            Some(c) => Ok(c),
            None => Conn::dial(&self.addr, &self.opts),
        }
    }

    fn checkin(&self, conn: Conn) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < self.opts.pool_cap {
            pool.push(conn);
        } // else drop: over cap, close it
    }

    /// One request → one classified response, no busy retry. The
    /// connection is returned to the pool only on success; any error
    /// closes it (its stream state is unknown).
    pub fn call_once(&self, line: &str) -> Result<Response, ClientError> {
        let mut conn = self.checkout()?;
        let out = conn
            .send_line(line)
            .and_then(|()| conn.read_line())
            .and_then(|resp| parse_response(&resp));
        if out.is_ok() {
            self.checkin(conn);
        }
        out
    }

    /// One request → the raw `ok` response line. Busy responses are
    /// retried after the server-quoted `retry_after_ms`; structured
    /// error/timeout responses become typed errors.
    pub fn call(&self, line: &str) -> Result<String, ClientError> {
        let mut attempts = 0u32;
        loop {
            match self.call_once(line)? {
                Response::Ok { line } => return Ok(line),
                Response::Busy { retry_after_ms } => {
                    if attempts >= self.opts.max_busy_retries {
                        return Err(ClientError::Busy { retry_after_ms });
                    }
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                Response::Error { kind, message } => {
                    return Err(ClientError::Server { kind, message })
                }
                Response::Timeout { waited_ms } => return Err(ClientError::Timeout { waited_ms }),
            }
        }
    }

    /// Pipeline a batch: write every line, then read exactly one
    /// response per line, positionally matched (the server answers each
    /// connection in request order). Busy responses are re-pipelined in
    /// follow-up rounds after the largest quoted `retry_after_ms`, so a
    /// sweep pushed against a full queue completes instead of failing.
    ///
    /// Returns one classified terminal response per input line; only
    /// transport/parse failures abort the whole batch.
    pub fn pipeline(&self, lines: &[String]) -> Result<Vec<Response>, ClientError> {
        let mut out: Vec<Option<Response>> = vec![None; lines.len()];
        let mut remaining: Vec<usize> = (0..lines.len()).collect();
        let mut conn = self.checkout()?;
        let mut rounds = 0u32;
        while !remaining.is_empty() {
            for &i in &remaining {
                conn.send_line(&lines[i])?;
            }
            let mut retry = Vec::new();
            let mut max_wait = 1u64;
            for &i in &remaining {
                let resp = conn.read_line().and_then(|r| parse_response(&r))?;
                if let Response::Busy { retry_after_ms } = resp {
                    if rounds < self.opts.max_busy_retries {
                        max_wait = max_wait.max(retry_after_ms.max(1));
                        retry.push(i);
                        continue;
                    }
                }
                out[i] = Some(resp);
            }
            if !retry.is_empty() {
                rounds += 1;
                std::thread::sleep(Duration::from_millis(max_wait));
            }
            remaining = retry;
        }
        self.checkin(conn);
        Ok(out
            .into_iter()
            .map(|r| r.expect("every index answered"))
            .collect())
    }

    /// `stats` verb: the raw one-line JSON telemetry snapshot.
    pub fn stats(&self) -> Result<String, ClientError> {
        self.call("stats")
    }

    /// `ping` verb; errors if the daemon is unreachable or draining.
    pub fn ping(&self) -> Result<(), ClientError> {
        self.call("ping").map(|_| ())
    }

    /// `shutdown` verb: ask the daemon to drain and exit.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.call("shutdown").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A scripted one-connection server: answers each request line with
    /// the next canned response.
    fn fake_server(responses: Vec<&'static str>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            for resp in responses {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                stream.write_all(resp.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
            }
        });
        (addr, handle)
    }

    #[test]
    fn call_retries_busy_then_returns_ok() {
        let (addr, h) = fake_server(vec![
            r#"{"status":"busy","id":"a","retry_after_ms":1}"#,
            r#"{"status":"ok","id":"a","result":{}}"#,
        ]);
        let c = Client::connect(&addr).unwrap();
        let line = c.call("run kernel=fft id=a").unwrap();
        assert!(line.contains(r#""status":"ok""#));
        h.join().unwrap();
    }

    #[test]
    fn call_surfaces_typed_server_errors() {
        let (addr, h) = fake_server(vec![
            r#"{"status":"error","id":"a","kind":"unknown-kernel","message":"no such kernel"}"#,
        ]);
        let c = Client::connect(&addr).unwrap();
        let err = c.call("run kernel=doom id=a").unwrap_err();
        assert_eq!(
            err,
            ClientError::Server {
                kind: "unknown-kernel".into(),
                message: "no such kernel".into()
            }
        );
        h.join().unwrap();
    }

    #[test]
    fn pipeline_matches_responses_positionally_and_retries_busy() {
        let (addr, h) = fake_server(vec![
            r#"{"status":"ok","id":"r0","result":{}}"#,
            r#"{"status":"busy","id":"r1","retry_after_ms":1}"#,
            r#"{"status":"ok","id":"r1","result":{}}"#,
        ]);
        let c = Client::connect(&addr).unwrap();
        let out = c
            .pipeline(&["run kernel=fft id=r0".into(), "run kernel=fft id=r1".into()])
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], Response::Ok { line } if line.contains("r0")));
        assert!(matches!(&out[1], Response::Ok { line } if line.contains("r1")));
        h.join().unwrap();
    }

    #[test]
    fn parse_response_is_total_on_garbage() {
        for garbage in [
            "",
            "{",
            "not json",
            r#"{"status":"warp"}"#,
            r#"{"status":"busy"}"#, // missing retry_after_ms
            r#"{"status":123}"#,
            "\u{0}\u{1}\u{2}",
        ] {
            match parse_response(garbage) {
                Err(ClientError::Protocol(_)) => {}
                other => panic!("{garbage:?} => {other:?}"),
            }
        }
    }

    #[test]
    fn server_timeout_frames_become_typed_errors() {
        let (addr, h) = fake_server(vec![r#"{"status":"timeout","id":"a","waited_ms":777}"#]);
        let c = Client::connect(&addr).unwrap();
        assert_eq!(
            c.call("run kernel=fft id=a").unwrap_err(),
            ClientError::Timeout { waited_ms: 777 }
        );
        h.join().unwrap();
    }
}
