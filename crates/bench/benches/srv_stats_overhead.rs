//! Telemetry cost gate (PR7): the request path must stay within 2% of
//! its quiet wall time while a scraper hammers the stats surface, and
//! CI enforces `benchcmp ratio poll_10hz/no_polling --max 1.02` on the
//! records this binary writes.
//!
//! A 2% gate is an order of magnitude tighter than the suite's 15%
//! regression threshold, and sequential A-then-B measurement loses to
//! low-frequency host noise (CPU contention, frequency drift) long
//! before it resolves 2%. So this bench does NOT use the criterion
//! harness: it alternates quiet and polled measurement windows across
//! one time span — drift lands on both conditions equally and cancels
//! in the medians — and emits the two records through the same
//! `sctm-bench-v1` JSON writer the shim uses. One poller thread exists
//! for the whole run (so thread presence is identical in both
//! conditions) but only scrapes `stats` JSON + Prometheus text, at
//! 10 Hz, during polled windows: the ratio isolates the cost of the
//! polling itself.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sctm_prof::benchjson::{BenchFile, BenchRecord};
use sctm_srv::{parse_request, Request, RunRequest, Server, ServerConfig};

/// Paired windows per condition; medians are taken across these.
const WINDOWS: usize = 30;
/// Batches per window; a window's sample is the MIN batch mean, which
/// filters scheduler preemption (noise only ever adds time). A real
/// hot-path regression — a new lock, per-request telemetry work —
/// slows every batch, so the min still moves with it.
const BATCHES: usize = 5;
/// Warm roundtrips per batch (~25 ms at the local ~400 µs floor; a
/// window spans ~125 ms, so the 10 Hz poller fires during each polled
/// window).
const PER_BATCH: usize = 64;

fn run_req(line: &str) -> RunRequest {
    match parse_request(line).expect("parse") {
        Request::Run(r) => *r,
        other => panic!("expected run, got {other:?}"),
    }
}

/// Min batch-mean ns/roundtrip over one window of warm cached-replay
/// requests (see `BATCHES` for why min).
fn window_ns(server: &Server, req: &RunRequest) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..PER_BATCH {
            std::hint::black_box(server.submit_blocking(req.clone()));
        }
        best = best.min(start.elapsed().as_nanos() as f64 / PER_BATCH as f64);
    }
    best
}

fn record(id: &str, mut samples: Vec<f64>) -> BenchRecord {
    samples.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
    let median = if samples.len() % 2 == 1 {
        samples[samples.len() / 2]
    } else {
        (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2.0
    };
    BenchRecord {
        id: id.to_string(),
        samples: samples.len() as u64,
        min_ns: samples[0],
        p25_ns: q(0.25),
        median_ns: median,
        p75_ns: q(0.75),
        max_ns: samples[samples.len() - 1],
    }
}

fn main() {
    let server = Arc::new(Server::start(ServerConfig::default()));
    let req = run_req("run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=o");
    server.submit_blocking(req.clone()); // prime the capture cache

    // One long-lived scraper; `active` gates whether it actually polls.
    let active = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let server = Arc::clone(&server);
        let active = Arc::clone(&active);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if active.load(Ordering::Relaxed) {
                    // Both exposition formats, like a real scrape cycle.
                    std::hint::black_box(server.stats_manifest().to_json_compact());
                    std::hint::black_box(server.prometheus_text());
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };

    // Steady-state warm-up before any timed window.
    for _ in 0..BATCHES * PER_BATCH {
        std::hint::black_box(server.submit_blocking(req.clone()));
    }

    let mut quiet = Vec::with_capacity(WINDOWS);
    let mut polled = Vec::with_capacity(WINDOWS);
    for _ in 0..WINDOWS {
        active.store(false, Ordering::Relaxed);
        quiet.push(window_ns(&server, &req));
        active.store(true, Ordering::Relaxed);
        polled.push(window_ns(&server, &req));
    }
    stop.store(true, Ordering::Relaxed);
    poller.join().expect("poller thread");

    let mut file = BenchFile::new();
    file.benches
        .push(record("srv_stats_overhead/no_polling", quiet));
    file.benches
        .push(record("srv_stats_overhead/poll_10hz", polled));
    for b in &file.benches {
        println!(
            "{:<40} time: [{:.3} µs {:.3} µs {:.3} µs]  ({} interleaved windows, min of {} x {}-iter batches)",
            b.id,
            b.min_ns / 1e3,
            b.median_ns / 1e3,
            b.max_ns / 1e3,
            b.samples,
            BATCHES,
            PER_BATCH
        );
    }
    println!(
        "poll_10hz / no_polling median ratio: {:.4}",
        file.benches[1].median_ns / file.benches[0].median_ns
    );

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--bench-json" {
            let path = args.next().expect("--bench-json needs a path");
            std::fs::write(&path, file.to_json()).expect("write bench json");
            println!("srv_stats_overhead: wrote bench JSON to {path}");
        }
    }
}
