//! Microbenchmarks of the discrete-event kernel — the floor under every
//! simulator's throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sctm_engine::event::EventQueue;
use sctm_engine::rng::StreamRng;
use sctm_engine::stats::Histogram;
use sctm_engine::time::SimTime;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                q.schedule(SimTime::from_ps((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            black_box(sum)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/u64_x1k", |b| {
        let mut r = StreamRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(r.below(1_000_000));
            }
            black_box(acc)
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record_1k", |b| {
        let mut h = Histogram::new();
        b.iter(|| {
            for i in 0..1000u64 {
                h.record(i * i % 1_000_000);
            }
            black_box(h.p99())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_rng, bench_histogram
}
criterion_main!(benches);
