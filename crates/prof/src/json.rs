//! A minimal recursive-descent JSON parser (and the matching string
//! escaper) for the bench-JSON toolchain.
//!
//! The workspace builds offline — no serde — and `benchcmp` must read
//! files written by three different emitters (the criterion shim,
//! `tables`, and hand-edited baselines), so "split on commas" is not
//! good enough. This covers the full JSON grammar except exotic number
//! forms beyond what `f64::from_str` accepts, which is exactly the
//! subset all our emitters produce.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects keep sorted keys (`BTreeMap`) so
/// re-serialisation and comparison are deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            m.insert(k, self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let e = self.peek().ok_or("dangling escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("short \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u{hex}"))?;
                            self.i += 4;
                            // Surrogates degrade to the replacement char;
                            // none of our emitters produce them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape \\{}", e as char)),
                    }
                }
                Some(_) => {
                    // UTF-8 passthrough: copy the whole multi-byte char.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        let txt = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        txt.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{txt}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, "x", true, null], "b": {"c": 3e2}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(300.0));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1} ünïcödé";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#""open"#).is_err());
    }

    #[test]
    fn as_u64_only_for_integers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
