//! Property tests for the observability layer's two numeric guarantees:
//! histogram quantiles stay within their documented error bound over the
//! full `u64` range, and metrics-registry snapshot/merge is exactly
//! associative — the precondition for deterministic parallel
//! aggregation (per-thread registries can be merged in any grouping and
//! produce the identical snapshot).

use proptest::prelude::*;
use sctm::engine::stats::Histogram;
use sctm::obs::{MetricValue, MetricsRegistry};

/// One randomly generated registry operation, applied to a named metric.
fn apply(reg: &mut MetricsRegistry, op: &(u8, u8, u64)) {
    let (kind, slot, v) = *op;
    // Keep name spaces per kind disjoint so ops never mix metric kinds
    // on one name (mixing is a programming error, debug_assert'd).
    match kind % 3 {
        0 => reg.counter_add(format!("c{}", slot % 4), v),
        1 => reg.gauge_set(format!("g{}", slot % 4), v as f64),
        _ => reg.hist_record(format!("h{}", slot % 4), v),
    }
}

fn build(ops: &[(u8, u8, u64)]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for op in ops {
        apply(&mut reg, op);
    }
    reg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Quantiles are within ~6% of the true order statistic for any
    /// sample set drawn from the **full** `u64` range: the log-linear
    /// buckets have width ≤ value/8, and `quantile` returns the bucket
    /// midpoint clamped to `[min, max]`, so the error is ≤ value/16
    /// (+1 for integer rounding).
    #[test]
    fn histogram_quantile_error_bounded(samples in prop::collection::vec(any::<u64>(), 1..400)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            // Same rank convention as Histogram::quantile.
            let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let truth = sorted[target - 1];
            let got = h.quantile(q);
            prop_assert!(
                got.abs_diff(truth) <= truth / 16 + 1,
                "q={q}: got {got}, true order statistic {truth} (n={})",
                sorted.len()
            );
        }
        prop_assert_eq!(h.quantile(0.0), sorted[0]);
        prop_assert_eq!(h.quantile(1.0), *sorted.last().unwrap());
    }

    /// Snapshot/merge is exactly associative and order-insensitive:
    /// `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)`, with every metric kind
    /// (counter sum, gauge max, histogram bucket-wise merge) compared
    /// for exact equality. This is what makes parallel sweeps publish
    /// deterministic aggregates regardless of worker count.
    #[test]
    fn registry_merge_associative(
        a in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..60),
        b in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..60),
        c in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..60),
    ) {
        let (ra, rb, rc) = (build(&a), build(&b), build(&c));

        let mut left = ra.snapshot();
        left.merge(&rb);
        left.merge(&rc);

        let mut right_tail = rb.snapshot();
        right_tail.merge(&rc);
        let mut right = ra.snapshot();
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right, "merge grouping changed the aggregate");

        // Merging in the swapped order must agree too (counters are
        // commutative sums, gauges max, histograms bucket-wise sums).
        let mut swapped = rc.snapshot();
        swapped.merge(&ra);
        swapped.merge(&rb);
        prop_assert_eq!(&left, &swapped, "merge order changed the aggregate");

        // A merge with an empty registry is the identity.
        let mut id = ra.snapshot();
        id.merge(&MetricsRegistry::new());
        prop_assert_eq!(&id, &ra);
    }
}

#[test]
fn registry_snapshot_is_deep() {
    let mut reg = MetricsRegistry::new();
    reg.counter_add("c", 1);
    reg.hist_record("h", 42);
    let snap = reg.snapshot();
    reg.counter_add("c", 1);
    reg.hist_record("h", 43);
    match snap.get("c") {
        Some(MetricValue::Counter(n)) => assert_eq!(*n, 1, "snapshot mutated"),
        other => panic!("bad snapshot entry: {other:?}"),
    }
}
