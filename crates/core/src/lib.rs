//! # sctm-core — the SCTM full-system ONoC simulation system
//!
//! Public API of the *Self-Correction Trace Model* reproduction: build a
//! simulated tiled CMP ([`SystemConfig`]), bind a workload to it
//! ([`Experiment`]), and run it in any [`Mode`]:
//!
//! ```
//! use sctm_core::{Experiment, NetworkKind, RunSpec, SystemConfig};
//! use sctm_workloads::Kernel;
//!
//! // 16-core CMP on the circuit-switched photonic mesh.
//! let system = SystemConfig::new(4, NetworkKind::Omesh);
//! let exp = Experiment::new(system, Kernel::Fft).with_ops(300);
//!
//! // The slow, accurate reference…
//! let reference = exp.execute(&RunSpec::exec_driven()).unwrap().report;
//! // …and the paper's fast self-correcting trace model.
//! let estimate = exp.execute(&RunSpec::self_correction(5)).unwrap().report;
//!
//! let acc = sctm_core::accuracy(&estimate, &reference);
//! assert!(acc.exec_time_err_pct < 15.0);
//! ```
//!
//! Everything underneath is public too, re-exported from the component
//! crates: the event kernel (`sctm_engine`), the electrical baseline
//! (`sctm_enoc`), the photonic device layer (`sctm_photonic`), both
//! optical architectures (`sctm_onoc`), the full-system CMP model
//! (`sctm_cmp`), the workload skeletons (`sctm_workloads`) and the
//! trace engines (`sctm_trace`).

pub mod config;
pub mod error;
pub mod metrics;
pub mod modes;
pub mod spec;

pub use config::{NetworkKind, SystemConfig};
pub use error::SctmError;
pub use metrics::{accuracy, Accuracy, RunReport};
pub use modes::{Experiment, Mode, ProfileCapture};
pub use spec::{RunOutcome, RunSpec};

/// Look a workload kernel up by its [`sctm_workloads::Kernel::label`]
/// (`"fft"`, `"lu"`, ...). The typed front door for services and CLIs
/// that receive kernel names as strings.
pub fn kernel_from_label(label: &str) -> Result<sctm_workloads::Kernel, SctmError> {
    sctm_workloads::Kernel::ALL
        .iter()
        .copied()
        .find(|k| k.label() == label)
        .ok_or_else(|| SctmError::UnknownKernel(label.to_string()))
}

// Component-crate re-exports for downstream users.
pub use sctm_cmp as cmp;
pub use sctm_engine as engine;
pub use sctm_enoc as enoc;
pub use sctm_obs as obs;
pub use sctm_onoc as onoc;
pub use sctm_photonic as photonic;
pub use sctm_trace as trace;
pub use sctm_workloads as workloads;
