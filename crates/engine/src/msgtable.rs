//! Dense message table: the shared in-flight-message store for every
//! network model.
//!
//! Message ids are dense `u64`s assigned from 0 (asserted by the trace
//! capture hook and guaranteed by `CmpSim`'s message counter), so the
//! classic `HashMap<u64, MsgState>` on the per-event path pays hashing
//! for nothing. [`MsgTable`] replaces it with a slab plus an id→slot
//! index: lookups are two array loads, inserts/removes are O(1) with a
//! free-list, and memory stays bounded by `4 bytes × max id` for the
//! index plus `size_of::<T>() × max concurrently in-flight` for the
//! slab — ids only ever grow the cheap index, never the slab.

use crate::net::MsgId;

const NONE: u32 = u32::MAX;

/// O(1) id-keyed store for in-flight message state, indexed by dense
/// [`MsgId`]s. All operations take the raw `u64` id (`msg.id.0`).
#[derive(Debug, Clone, Default)]
pub struct MsgTable<T> {
    /// Slab of live entries; `None` entries are on the free-list.
    slots: Vec<Option<T>>,
    /// `index[id]` = slot of `id`'s entry, or `NONE`.
    index: Vec<u32>,
    /// Vacated slab positions, reused LIFO.
    free: Vec<u32>,
    len: usize,
}

impl<T> MsgTable<T> {
    pub fn new() -> Self {
        MsgTable {
            slots: Vec::new(),
            index: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Pre-size for `ids` message ids and `inflight` concurrent entries.
    pub fn with_capacity(ids: usize, inflight: usize) -> Self {
        MsgTable {
            slots: Vec::with_capacity(inflight),
            index: Vec::with_capacity(ids),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, id: u64) -> Option<usize> {
        match self.index.get(id as usize) {
            Some(&s) if s != NONE => Some(s as usize),
            _ => None,
        }
    }

    /// Insert `value` under `id`, returning the previous entry if one
    /// was present (the models treat that as a duplicate-id bug and
    /// assert on it).
    pub fn insert(&mut self, id: u64, value: T) -> Option<T> {
        let idx = id as usize;
        assert!(
            idx < (u32::MAX as usize),
            "MsgTable id {id} out of dense range"
        );
        if idx >= self.index.len() {
            self.index.resize(idx + 1, NONE);
        }
        let existing = self.index[idx];
        if existing != NONE {
            return self.slots[existing as usize].replace(value);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(value);
                s
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        };
        self.index[idx] = slot;
        self.len += 1;
        None
    }

    /// Remove and return the entry for `id`, freeing its slab slot.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let slot = self.slot_of(id)?;
        self.index[id as usize] = NONE;
        self.free.push(slot as u32);
        self.len -= 1;
        self.slots[slot].take()
    }

    #[inline]
    pub fn get(&self, id: u64) -> Option<&T> {
        self.slot_of(id).and_then(|s| self.slots[s].as_ref())
    }

    #[inline]
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        match self.slot_of(id) {
            Some(s) => self.slots[s].as_mut(),
            None => None,
        }
    }

    pub fn contains(&self, id: u64) -> bool {
        self.slot_of(id).is_some()
    }

    /// Convenience overloads keyed by [`MsgId`].
    pub fn get_msg(&self, id: MsgId) -> Option<&T> {
        self.get(id.0)
    }

    /// Drop all entries; keeps allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.free.clear();
        self.len = 0;
    }

    /// Iterate over live `(id, &value)` pairs in id order. O(index len);
    /// meant for drain/validation paths, not the per-event path.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> + '_ {
        self.index.iter().enumerate().filter_map(|(id, &s)| {
            if s == NONE {
                None
            } else {
                self.slots[s as usize].as_ref().map(|v| (id as u64, v))
            }
        })
    }
}

impl<T> std::ops::Index<u64> for MsgTable<T> {
    type Output = T;

    /// Panics if `id` has no entry (the models treat that as a protocol
    /// bug, mirroring `HashMap`'s index behaviour).
    fn index(&self, id: u64) -> &T {
        self.get(id)
            .unwrap_or_else(|| panic!("no in-flight entry for message id {id}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = MsgTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(3, "a"), None);
        assert_eq!(t.insert(0, "b"), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(3), Some(&"a"));
        assert_eq!(t.get(1), None);
        assert_eq!(t.remove(3), Some("a"));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.len(), 1);
        assert!(t.contains(0));
        assert!(!t.contains(3));
    }

    #[test]
    fn slots_are_reused() {
        let mut t = MsgTable::new();
        for id in 0..100u64 {
            t.insert(id, id * 2);
            t.remove(id);
        }
        // Every insert vacated its slot before the next one: the slab
        // never needed more than one slot.
        assert_eq!(t.slots.len(), 1);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn duplicate_insert_returns_previous() {
        let mut t = MsgTable::new();
        assert_eq!(t.insert(7, 1u32), None);
        assert_eq!(t.insert(7, 2u32), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(7), Some(&2));
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t = MsgTable::new();
        t.insert(5, vec![1u8]);
        t.get_mut(5).unwrap().push(2);
        assert_eq!(t.get(5).unwrap().as_slice(), &[1, 2]);
        assert_eq!(t.get_mut(6), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = MsgTable::new();
        for id in [9u64, 2, 5, 0] {
            t.insert(id, id);
        }
        t.remove(5);
        let got: Vec<u64> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(got, vec![0, 2, 9]);
    }
}
