//! Streaming statistics.
//!
//! Instrumentation stays enabled in benchmark runs, so everything here is
//! O(1) per sample with small constants: counters, Welford mean/variance,
//! and a two-level histogram (log2 bucket + linear sub-bucket) that gives
//! ~6% relative quantile error over the full `u64` range using 4 KiB.

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    n: u64,
}

impl Counter {
    pub fn new() -> Self {
        Counter { n: 0 }
    }
    #[inline]
    pub fn inc(&mut self) {
        self.n += 1;
    }
    #[inline]
    pub fn add(&mut self, k: u64) {
        self.n += k;
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.n
    }
}

/// Welford streaming mean / variance / min / max.
#[derive(Debug, Clone)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Running {
    fn default() -> Self {
        Self::new()
    }
}

impl Running {
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Half-width of the 95% normal-approximation confidence interval.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (Chan et al. parallel
    /// combination) — used when joining per-thread sweep results.
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

const LINEAR_BITS: u32 = 3; // 8 sub-buckets per power of two
const SUB: usize = 1 << LINEAR_BITS;
const GROUPS: usize = 64;

/// Log-linear histogram of `u64` samples (HdrHistogram-style).
///
/// Bucket `g, s` covers values with the top bit in position `g` and the
/// next `LINEAR_BITS` bits equal to `s`, giving bounded relative error
/// on quantile queries (≤ `2^-LINEAR_BITS` ≈ 12.5% width, ~6% midpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; GROUPS * SUB],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let g = 63 - v.leading_zeros();
        let s = ((v >> (g - LINEAR_BITS)) & (SUB as u64 - 1)) as usize;
        (g as usize - LINEAR_BITS as usize + 1) * SUB + s
    }

    /// Lower edge of the bucket with the given flat index.
    fn bucket_low(idx: usize) -> u64 {
        let g = idx / SUB;
        let s = (idx % SUB) as u64;
        if g == 0 {
            s
        } else {
            let base_shift = g as u32 + LINEAR_BITS - 1;
            (1u64 << base_shift) + (s << (base_shift - LINEAR_BITS))
        }
    }

    /// Midpoint of the bucket with the given flat index. Group 0 buckets
    /// hold a single exact value; wider buckets report their centre,
    /// halving the worst-case quantile error versus the lower edge.
    /// Computed from the bucket width directly so the top group (whose
    /// *upper* edge would overflow `u64`) stays in range.
    fn bucket_mid(idx: usize) -> u64 {
        let g = idx / SUB;
        if g == 0 {
            return Self::bucket_low(idx);
        }
        let base_shift = g as u32 + LINEAR_BITS - 1;
        let half_width = 1u64 << base_shift >> (LINEAR_BITS + 1);
        Self::bucket_low(idx) + half_width
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in `[0, 1]`. Returns the midpoint of the
    /// bucket containing the q-th sample, clamped to `[min, max]` (so
    /// q=0/1 stay exact). Buckets are `2^-LINEAR_BITS` relative width,
    /// giving a worst-case error of half that: ≤ 1/16 ≈ 6% of the true
    /// order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_mid(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Upper edge (inclusive) of the bucket with the given flat index:
    /// the largest value the bucket can hold.
    fn bucket_high(idx: usize) -> u64 {
        if idx + 1 < GROUPS * SUB {
            Self::bucket_low(idx + 1) - 1
        } else {
            u64::MAX
        }
    }

    /// Number of recorded samples **guaranteed** to be ≤ `v`: the sum of
    /// every bucket whose entire range lies at or below `v`. Bucketed,
    /// so it undercounts by at most one bucket's population (≤ 12.5%
    /// relative width) when `v` falls inside a bucket; it is monotone in
    /// `v` and `count_le(u64::MAX) == count()`, which is exactly what a
    /// cumulative (Prometheus-style) bucket export needs.
    pub fn count_le(&self, v: u64) -> u64 {
        let mut n = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 && Self::bucket_high(i) <= v {
                n += c;
            }
        }
        n
    }

    /// Sum of all recorded samples (exact, not bucketed).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram (same shape by construction).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Relative error |measured − reference| / reference, in percent.
/// Returns 0 when the reference is 0 and measured is 0 too; returns
/// `f64::INFINITY` when only the reference is 0.
pub fn rel_err_pct(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - reference).abs() / reference.abs() * 100.0
    }
}

/// Geometric mean of positive values; 0 if empty.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_mean_var() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // sample variance of this classic set is 32/7
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn running_empty_is_zeroes() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
        assert_eq!(r.ci95(), 0.0);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let mut all = Running::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..400] {
            a.push(x);
        }
        for &x in &xs[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.count(), 8);
        assert!((h.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.15, "q={q}: got {got}, expect {expect}, err {err}");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..500u64 {
            a.record(v);
        }
        for v in 500..1000u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 999);
        let mid = a.p50() as f64;
        assert!((mid - 500.0).abs() / 500.0 < 0.15, "p50={mid}");
    }

    #[test]
    fn histogram_huge_values_dont_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5) > 1 << 62);
    }

    #[test]
    fn bucket_index_monotone_on_boundaries() {
        // Indices must be non-decreasing in value, or quantiles break.
        let mut last = 0;
        let mut v = 0u64;
        while v < u64::MAX / 2 {
            let idx = Histogram::index(v);
            assert!(idx >= last, "index not monotone at v={v}");
            last = idx;
            v = v + v / 16 + 1;
        }
    }

    #[test]
    fn count_le_is_monotone_cumulative_and_complete() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        // Monotone over increasing thresholds, complete at the top.
        let mut last = 0;
        for exp in 0..12u32 {
            let v = 10u64.pow(exp);
            let n = h.count_le(v);
            assert!(n >= last, "count_le not monotone at {v}");
            // Never overcounts: every counted sample really is ≤ v.
            assert!(n <= v.min(10_000), "count_le({v}) = {n} overcounts");
            last = n;
        }
        assert_eq!(h.count_le(u64::MAX), h.count());
        assert_eq!(h.count_le(0), 0);
        // Small values are exact (group-0 buckets hold single values).
        assert_eq!(h.count_le(5), 5);
        // Undercount is bounded by one bucket (12.5% relative width).
        let n = h.count_le(8_000);
        assert!(n as f64 >= 8_000.0 * 0.85, "count_le(8000) = {n}");
    }

    #[test]
    fn histogram_sum_is_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 10, 100, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.sum(), 111u128 + u64::MAX as u128);
    }

    #[test]
    fn empty_histogram_sums_and_cumulates_to_zero() {
        let h = Histogram::new();
        assert_eq!(h.sum(), 0);
        assert_eq!(h.count(), 0);
        for v in [0u64, 1, 1 << 20, u64::MAX] {
            assert_eq!(h.count_le(v), 0, "count_le({v}) on empty histogram");
        }
    }

    #[test]
    fn single_bucket_histogram_is_exact() {
        // All mass in one bucket: sum, count and the cumulative count
        // on either side of the value must all be exact, including the
        // v-1 / v boundary (group-0 buckets hold single values).
        let mut h = Histogram::new();
        for _ in 0..7 {
            h.record(5);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 35);
        assert_eq!(h.count_le(4), 0);
        assert_eq!(h.count_le(5), 7);
        assert_eq!(h.count_le(u64::MAX), 7);
    }

    #[test]
    fn rel_err_pct_cases() {
        assert!((rel_err_pct(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert_eq!(rel_err_pct(0.0, 0.0), 0.0);
        assert!(rel_err_pct(1.0, 0.0).is_infinite());
        assert!((rel_err_pct(90.0, 100.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_cases() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
