//! End-to-end contract of the `sctmd` batch service: the cache makes a
//! sweep cost one capture, caching never changes an answer, results
//! from the service are byte-identical to direct `execute` calls, the
//! bounded queue pushes back, and deadlines drop stale requests.
//!
//! CI runs this suite under `SCTM_THREADS=1` and `=4`; every
//! byte-identity assertion therefore also pins thread-count
//! independence of the service's responses.

use sctm_srv::{
    parse_request, result_json, serve_lines, Request, RunRequest, Server, ServerConfig,
};

fn run_req(line: &str) -> RunRequest {
    match parse_request(line).expect("parse") {
        Request::Run(r) => *r,
        other => panic!("expected run, got {other:?}"),
    }
}

/// The deterministic tail of a response line (everything from
/// `"result":`); wall times and cache state live before it.
fn result_of(line: &str) -> &str {
    let at = line
        .find(r#""result":"#)
        .unwrap_or_else(|| panic!("no result object in {line}"));
    &line[at..]
}

fn assert_status(line: &str, status: &str) {
    assert!(
        line.starts_with(&format!(r#"{{"status":"{status}""#)),
        "expected status {status}: {line}"
    );
}

#[test]
fn warm_hit_is_byte_identical_to_cold_and_to_direct_execute() {
    let server = Server::start(ServerConfig::default());
    let req = run_req("run kernel=fft net=oxbar side=2 ops=150 mode=sctm iters=2 id=x");
    let cold = server.submit_blocking(req.clone());
    let warm = server.submit_blocking(req.clone());
    assert_status(&cold, "ok");
    assert!(cold.contains(r#""cache":"miss""#), "{cold}");
    assert!(warm.contains(r#""cache":"hit""#), "{warm}");
    assert_eq!(result_of(&cold), result_of(&warm));

    // And both equal the library path with no service in between.
    let direct = req.experiment.execute(&req.spec).unwrap().report;
    let direct_json = format!(r#""result":{}}}"#, result_json(&direct, &req.experiment));
    assert_eq!(result_of(&cold), direct_json);
}

#[test]
fn a_config_sweep_costs_exactly_one_capture() {
    // The service's reason to exist: 50 requests over one workload —
    // every detailed network crossed with loop knobs — share a single
    // CMP capture, because the capture key excludes the target network.
    let server = Server::start(ServerConfig::default());
    let mut lines = Vec::new();
    let mut n = 0;
    'outer: for damping in ["0.4", "0.6", "0.8", "0.9", "1.0"] {
        for net in ["emesh", "omesh", "oxbar", "hybrid", "obus"] {
            for mode in ["classic-trace", "sctm"] {
                if n == 50 {
                    break 'outer;
                }
                n += 1;
                let req = run_req(&format!(
                    "run kernel=fft net={net} side=2 ops=150 mode={mode} iters=2 \
                     damping={damping} replay=1 id=s{n}"
                ));
                lines.push(server.submit_blocking(req));
            }
        }
    }
    assert_eq!(lines.len(), 50);
    for line in &lines {
        assert_status(line, "ok");
    }
    let misses = lines
        .iter()
        .filter(|l| l.contains(r#""cache":"miss""#))
        .count();
    let hits = lines
        .iter()
        .filter(|l| l.contains(r#""cache":"hit""#))
        .count();
    assert_eq!(misses, 1, "sweep captured more than once");
    assert_eq!(hits, 49);
    let stats = server.cache_stats();
    assert_eq!((stats.misses, stats.hits), (1, 49), "{stats:?}");
}

#[test]
fn concurrent_clients_get_deterministic_answers() {
    // Eight client threads, three distinct workloads, same-key requests
    // racing: every response must equal the direct library answer.
    let server = std::sync::Arc::new(Server::start(ServerConfig::default()));
    let reqs: Vec<RunRequest> = [
        "run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=c0",
        "run kernel=lu net=oxbar side=2 ops=150 mode=sctm iters=2 id=c1",
        "run kernel=barnes net=emesh side=2 ops=150 mode=oracle-trace id=c2",
    ]
    .iter()
    .map(|l| run_req(l))
    .collect();
    let expected: Vec<String> = reqs
        .iter()
        .map(|r| {
            let report = r.experiment.execute(&r.spec).unwrap().report;
            format!(r#""result":{}}}"#, result_json(&report, &r.experiment))
        })
        .collect();

    std::thread::scope(|s| {
        for client in 0..8usize {
            let server = std::sync::Arc::clone(&server);
            let reqs = reqs.clone();
            let expected = expected.clone();
            s.spawn(move || {
                for (req, want) in reqs.iter().zip(&expected) {
                    let line = server.submit_blocking(req.clone());
                    assert_status(&line, "ok");
                    assert_eq!(result_of(&line), want, "client {client} diverged");
                }
            });
        }
    });
    let stats = server.cache_stats();
    // 3 distinct workloads → 3 captures total across 24 trace-mode runs.
    assert_eq!(stats.misses, 3, "{stats:?}");
    assert_eq!(stats.hits, 21, "{stats:?}");
}

#[test]
fn full_queue_pushes_back_with_retry_after() {
    let server = Server::start(ServerConfig {
        queue_cap: 2,
        retry_after_ms: 7,
        ..ServerConfig::default()
    });
    // Occupy the scheduler with a slow batch: it drains the queue
    // immediately, so the *next* submissions pile up behind it.
    let heavy = run_req("run kernel=fft net=omesh side=4 ops=500 mode=sctm iters=4 id=heavy");
    let heavy_rx = server.submit(heavy).expect("heavy enqueues");
    let quick = "run kernel=fft net=omesh side=2 ops=100 mode=exec-driven id=q";
    let mut receivers = Vec::new();
    let mut busy = Vec::new();
    // Far more submissions than the queue holds, faster than the
    // scheduler can drain while the heavy batch runs.
    for _ in 0..200 {
        match server.submit(run_req(quick)) {
            Ok(rx) => receivers.push(rx),
            Err(line) => busy.push(line),
        }
    }
    assert!(!busy.is_empty(), "queue_cap=2 never pushed back");
    for line in &busy {
        assert_status(line, "busy");
        assert!(line.contains(r#""retry_after_ms":7"#), "{line}");
    }
    // Everything that *was* accepted still completes and answers.
    assert_status(&heavy_rx.recv().unwrap(), "ok");
    for rx in receivers {
        assert_status(&rx.recv().unwrap(), "ok");
    }
}

#[test]
fn expired_deadlines_drop_requests_without_running_them() {
    let server = Server::start(ServerConfig::default());
    // Hold the scheduler so the doomed request sits in the queue past
    // its (zero) deadline instead of being picked up instantly.
    let heavy = run_req("run kernel=fft net=omesh side=4 ops=400 mode=sctm iters=3 id=heavy");
    let heavy_rx = server.submit(heavy).expect("enqueue");
    let doomed =
        run_req("run kernel=fft net=omesh side=2 ops=100 mode=exec-driven timeout_ms=0 id=d");
    let line = server.submit_blocking(doomed);
    assert_status(&line, "timeout");
    assert!(line.contains(r#""id":"d""#), "{line}");
    assert_status(&heavy_rx.recv().unwrap(), "ok");
    // The dropped request never executed: no completion counted for it.
    let stats = server.stats_manifest().to_json_compact();
    assert!(
        stats.contains(r#""srv.timeouts": {"kind": "counter", "value": 1}"#),
        "{stats}"
    );
}

#[test]
fn serve_lines_answers_in_request_order_and_flushes_before_control() {
    let server = Server::start(ServerConfig::default());
    let script = "\
run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=r1
run kernel=fft net=oxbar side=2 ops=150 mode=classic-trace id=r2
run kernel=nosuch id=r3
stats
ping
shutdown
run kernel=fft id=never
";
    let mut out = Vec::new();
    let shutdown = serve_lines(script.as_bytes(), &mut out, &server).expect("serve");
    assert!(shutdown, "shutdown verb not honoured");
    server.drain();
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(lines.len(), 6, "{lines:#?}"); // nothing after shutdown
    assert_status(lines[0], "ok");
    assert!(lines[0].contains(r#""id":"r1""#));
    assert!(lines[0].contains(r#""cache":"miss""#));
    assert_status(lines[1], "ok");
    assert!(lines[1].contains(r#""id":"r2""#));
    assert!(lines[1].contains(r#""cache":"hit""#), "{}", lines[1]);
    assert_status(lines[2], "error");
    assert!(lines[2].contains(r#""kind":"unknown-kernel""#));
    // stats ran after both runs flushed: it must see their captures.
    assert_status(lines[3], "ok");
    assert!(
        lines[3].contains(r#""srv.cache.misses": {"kind": "counter", "value": 1}"#),
        "{}",
        lines[3]
    );
    assert!(lines[4].contains(r#""pong":true"#));
    assert!(lines[5].contains(r#""shutting_down":true"#));
}

#[test]
fn protocol_errors_are_typed_not_fatal() {
    let server = Server::start(ServerConfig::default());
    let script = "\
bogus-verb
run kernel=fft mode=warp9
run kernel=fft net=subspace
run kernel=fft side=9999
run kernel=fft mode=sctm iters=0
ping
";
    let mut out = Vec::new();
    serve_lines(script.as_bytes(), &mut out, &server).expect("serve");
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6);
    for (line, kind) in lines.iter().zip([
        "invalid-spec",
        "invalid-spec",
        "unknown-network",
        "invalid-config",
        "invalid-spec",
    ]) {
        assert_status(line, "error");
        assert!(line.contains(&format!(r#""kind":"{kind}""#)), "{line}");
    }
    assert!(lines[5].contains("pong"), "{}", lines[5]);
}

#[test]
fn drain_finishes_queued_work_then_refuses_new() {
    let server = Server::start(ServerConfig::default());
    let mut rxs = Vec::new();
    for i in 0..4 {
        let req = run_req(&format!(
            "run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=g{i}"
        ));
        rxs.push(server.submit(req).expect("enqueue"));
    }
    server.drain();
    for rx in rxs {
        assert_status(&rx.recv().unwrap(), "ok");
    }
    let refused = server.submit_blocking(run_req("run kernel=fft id=late"));
    assert_status(&refused, "error");
}

#[test]
fn tcp_front_end_serves_the_same_protocol() {
    use std::io::{BufRead, BufReader, Write};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = Server::start(ServerConfig::default());
    let daemon = std::thread::spawn(move || sctm_srv::serve_tcp(listener, server));

    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    conn.write_all(b"run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=t1\nshutdown\n")
        .expect("send");
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("read run response");
    assert_status(&line, "ok");
    assert!(line.contains(r#""id":"t1""#), "{line}");
    line.clear();
    reader.read_line(&mut line).expect("read shutdown ack");
    assert!(line.contains(r#""shutting_down":true"#), "{line}");
    daemon.join().expect("daemon thread").expect("daemon io");
}
