//! Latency blame analysis and critical-path extraction.
//!
//! Inputs: the capture-time [`TraceLog`] (for the causal dependency
//! DAG) and the replay-time [`MsgLifecycle`] records (for measured
//! latencies and their per-component decomposition on the *target*
//! network). Both are keyed by the same dense message ids, so joining
//! them is an index lookup.
//!
//! The critical path is computed by dynamic programming over the DAG
//! in replay injection order: the longest chain of
//! `latency + dependency gap` segments ending at each delivery. A
//! dependency edge is only *usable* if the dep really delivered at or
//! before the dependent's replay injection — replay can reorder
//! messages relative to capture, and edges that became acausal are
//! skipped (and counted, as a replay-fidelity diagnostic). By
//! construction the path length is at least the largest single-message
//! latency and at most the replay makespan; `tests/prof_properties.rs`
//! asserts both on real runs.

use crate::json::escape;
use sctm_engine::net::{LatencyBreakdown, MsgClass, MsgLifecycle};
use sctm_trace::TraceLog;
use std::fmt::Write as _;

/// Component totals for one message class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassBlame {
    pub class: &'static str,
    pub messages: u64,
    /// Sum of end-to-end latencies; equals `breakdown.total_ps()`
    /// exactly, because every model's per-message decomposition is
    /// exact.
    pub latency_ps: u64,
    pub breakdown: LatencyBreakdown,
}

/// The longest causal chain through the replayed run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    /// Total path length: message latencies plus dependency gaps.
    pub length_ps: u64,
    /// Messages on the path, in causal order (dense message ids).
    pub path: Vec<u64>,
    /// In-network blame along the path.
    pub blame: LatencyBreakdown,
    /// Time the path spent *between* messages — a delivery enabling an
    /// injection that only happened later (compute, protocol
    /// occupancy, barrier waits).
    pub dep_gap_ps: u64,
    /// Dependency edges that replay made acausal (dep delivered after
    /// the dependent injected) and the walk therefore skipped.
    pub acausal_edges: u64,
}

/// A full blame report for one profiled run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlameReport {
    pub network: String,
    pub workload: String,
    pub messages: u64,
    pub classes: Vec<ClassBlame>,
    pub critical_path: CriticalPath,
}

/// Sum lifecycle decompositions per message class.
pub fn aggregate(lifecycles: &[MsgLifecycle]) -> Vec<ClassBlame> {
    let mut ctrl = ClassBlame {
        class: "ctrl",
        ..ClassBlame::default()
    };
    let mut data = ClassBlame {
        class: "data",
        ..ClassBlame::default()
    };
    for l in lifecycles {
        let b = match l.msg.class {
            MsgClass::Control => &mut ctrl,
            MsgClass::Data => &mut data,
        };
        b.messages += 1;
        b.latency_ps += l.latency_ps();
        let d = &l.breakdown;
        b.breakdown.queue_ps += d.queue_ps;
        b.breakdown.arbitration_ps += d.arbitration_ps;
        b.breakdown.serialization_ps += d.serialization_ps;
        b.breakdown.propagation_ps += d.propagation_ps;
        b.breakdown.overhead_ps += d.overhead_ps;
    }
    vec![ctrl, data]
}

/// Extract the critical path (see module docs for the recurrence).
pub fn critical_path(log: &TraceLog, lifecycles: &[MsgLifecycle]) -> CriticalPath {
    let n = log.len();
    let mut lc: Vec<Option<&MsgLifecycle>> = vec![None; n];
    for l in lifecycles {
        let i = l.msg.id.0 as usize;
        if i < n {
            lc[i] = Some(l);
        }
    }
    // Process in replay injection order: any usable dep delivered at or
    // before this injection, and (latencies being positive) therefore
    // injected strictly earlier, so its DP state is already final.
    let mut order: Vec<usize> = (0..n).filter(|&i| lc[i].is_some()).collect();
    order.sort_unstable_by_key(|&i| (lc[i].unwrap().injected_at, i));

    let mut plen = vec![0u64; n]; // best path length ending at i
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut done = vec![false; n];
    let mut acausal = 0u64;
    let mut best: Option<usize> = None;
    for &i in &order {
        let l = lc[i].unwrap();
        let inj = l.injected_at;
        let mut via: Option<(u64, usize)> = None;
        for d in &log.records[i].deps {
            let j = d.0 as usize;
            let Some(dep) = (j < n).then(|| lc[j]).flatten() else {
                continue;
            };
            if dep.delivered_at > inj || !done[j] {
                acausal += 1;
                continue;
            }
            let gap = inj.saturating_since(dep.delivered_at).as_ps();
            let cand = plen[j] + gap;
            if via.is_none_or(|(v, _)| cand > v) {
                via = Some((cand, j));
            }
        }
        plen[i] = l.latency_ps() + via.map_or(0, |(v, _)| v);
        pred[i] = via.map(|(_, j)| j);
        done[i] = true;
        if best.is_none_or(|b| plen[i] > plen[b]) {
            best = Some(i);
        }
    }

    let mut cp = CriticalPath::default();
    let Some(end) = best else { return cp };
    cp.length_ps = plen[end];
    // Walk predecessors back to the path start, accumulating blame.
    let mut cur = Some(end);
    while let Some(i) = cur {
        cp.path.push(i as u64);
        let l = lc[i].unwrap();
        let d = &l.breakdown;
        cp.blame.queue_ps += d.queue_ps;
        cp.blame.arbitration_ps += d.arbitration_ps;
        cp.blame.serialization_ps += d.serialization_ps;
        cp.blame.propagation_ps += d.propagation_ps;
        cp.blame.overhead_ps += d.overhead_ps;
        if let Some(j) = pred[i] {
            cp.dep_gap_ps += l
                .injected_at
                .saturating_since(lc[j].unwrap().delivered_at)
                .as_ps();
        }
        cur = pred[i];
    }
    cp.path.reverse();
    cp.acausal_edges = acausal;
    debug_assert_eq!(cp.length_ps, cp.blame.total_ps() + cp.dep_gap_ps);
    cp
}

/// Transitive dirty frontier: every message whose replay timing a
/// change to the `seeds` messages can reach, walking the forward
/// dependency edges (a dep's delivery gates its dependants' injection)
/// and the per-source departure chains (a source's next message waits
/// on this one locally). Returns the closure — seeds included — in
/// ascending id order.
///
/// This is the *diagnostic* counterpart of the incremental replay
/// engine's checkpoint-validity test (`sctm-trace::incr`): the engine
/// only needs the direct input diff (everything downstream re-simulates
/// anyway), while this closure answers "how much of the trace can a
/// change at these points touch at all" — the right number for judging
/// whether incremental replay can pay off on a workload.
pub fn dirty_frontier(log: &TraceLog, seeds: &[u32]) -> Vec<u32> {
    let n = log.len();
    // Forward adjacency: dep -> dependants (CSR), plus the per-source
    // successor chain derived from `prev_same_src`.
    let mut cnt = vec![0u32; n];
    for r in &log.records {
        for d in &r.deps {
            cnt[d.0 as usize] += 1;
        }
    }
    let mut off = vec![0u32; n + 1];
    for i in 0..n {
        off[i + 1] = off[i] + cnt[i];
    }
    let mut adj = vec![0u32; off[n] as usize];
    cnt.fill(0);
    let mut next_same_src = vec![u32::MAX; n];
    for (i, r) in log.records.iter().enumerate() {
        for d in &r.deps {
            let d = d.0 as usize;
            adj[(off[d] + cnt[d]) as usize] = i as u32;
            cnt[d] += 1;
        }
        if let Some(p) = r.prev_same_src {
            next_same_src[p.0 as usize] = i as u32;
        }
    }
    let mut dirty = vec![false; n];
    let mut stack: Vec<u32> = seeds
        .iter()
        .copied()
        .filter(|&s| (s as usize) < n)
        .collect();
    while let Some(i) = stack.pop() {
        let iu = i as usize;
        if std::mem::replace(&mut dirty[iu], true) {
            continue;
        }
        for e in off[iu]..off[iu + 1] {
            if !dirty[adj[e as usize] as usize] {
                stack.push(adj[e as usize]);
            }
        }
        let nx = next_same_src[iu];
        if nx != u32::MAX && !dirty[nx as usize] {
            stack.push(nx);
        }
    }
    (0..n as u32).filter(|&i| dirty[i as usize]).collect()
}

/// One-call profile: per-class blame plus the critical path.
pub fn analyze(
    network: impl Into<String>,
    workload: impl Into<String>,
    log: &TraceLog,
    lifecycles: &[MsgLifecycle],
) -> BlameReport {
    BlameReport {
        network: network.into(),
        workload: workload.into(),
        messages: lifecycles.len() as u64,
        classes: aggregate(lifecycles),
        critical_path: critical_path(log, lifecycles),
    }
}

impl BlameReport {
    /// Folded-stack lines (`a;b;c value`) for flamegraph tooling:
    /// aggregate blame per class, then the critical path's own
    /// decomposition including the dependency-gap frame.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for c in &self.classes {
            for (name, ps) in c.breakdown.components() {
                if ps > 0 {
                    let _ = writeln!(out, "{};{};{} {}", self.network, c.class, name, ps);
                }
            }
        }
        for (name, ps) in self.critical_path.blame.components() {
            if ps > 0 {
                let _ = writeln!(out, "{};critical-path;{} {}", self.network, name, ps);
            }
        }
        if self.critical_path.dep_gap_ps > 0 {
            let _ = writeln!(
                out,
                "{};critical-path;dep-gap {}",
                self.network, self.critical_path.dep_gap_ps
            );
        }
        out
    }

    /// Hand-rolled JSON document (see crate docs for why no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"network\": \"{}\",\n  \"workload\": \"{}\",\n  \"messages\": {},\n",
            escape(&self.network),
            escape(&self.workload),
            self.messages
        );
        out.push_str("  \"classes\": [");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"class\": \"{}\", \"messages\": {}, \"latency_ps\": {}",
                c.class, c.messages, c.latency_ps
            );
            for (name, ps) in c.breakdown.components() {
                let _ = write!(out, ", \"{name}_ps\": {ps}");
            }
            out.push('}');
        }
        out.push_str("\n  ],\n");
        let cp = &self.critical_path;
        let _ = write!(
            out,
            "  \"critical_path\": {{\n    \"length_ps\": {},\n    \"messages\": {},\n    \"dep_gap_ps\": {},\n    \"acausal_edges\": {}",
            cp.length_ps,
            cp.path.len(),
            cp.dep_gap_ps,
            cp.acausal_edges
        );
        for (name, ps) in cp.blame.components() {
            let _ = write!(out, ",\n    \"{name}_ps\": {ps}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::{Message, MsgId, NodeId};
    use sctm_engine::time::SimTime;
    use sctm_trace::log::TraceRecord;

    fn lc(id: u64, inj: u64, del: u64, class: MsgClass) -> MsgLifecycle {
        let lat = del - inj;
        MsgLifecycle {
            msg: Message {
                id: MsgId(id),
                src: NodeId(0),
                dst: NodeId(1),
                class,
                bytes: 8,
            },
            injected_at: SimTime::from_ps(inj),
            delivered_at: SimTime::from_ps(del),
            breakdown: LatencyBreakdown {
                queue_ps: lat / 2,
                propagation_ps: lat - lat / 2,
                ..LatencyBreakdown::default()
            },
        }
    }

    fn rec(id: u64, deps: Vec<u64>) -> TraceRecord {
        TraceRecord {
            msg: Message {
                id: MsgId(id),
                src: NodeId(0),
                dst: NodeId(1),
                class: MsgClass::Control,
                bytes: 8,
            },
            t_inject: SimTime::from_ps(id * 10),
            t_deliver: SimTime::from_ps(id * 10 + 5),
            deps: deps.into_iter().map(MsgId).collect(),
            prev_same_src: None,
            kind: "test",
        }
    }

    fn log3() -> TraceLog {
        TraceLog {
            records: vec![rec(0, vec![]), rec(1, vec![0]), rec(2, vec![1])],
            capture_net: "test",
            capture_exec_time: SimTime::from_ps(500),
        }
    }

    #[test]
    fn dirty_frontier_walks_deps_and_source_chains() {
        // 0 → 1 → 2 via deps; 3 independent; 4 follows 3 on its source.
        let mut log = log3();
        log.records.push(rec(3, vec![]));
        let mut r4 = rec(4, vec![]);
        r4.prev_same_src = Some(MsgId(3));
        log.records.push(r4);

        assert_eq!(dirty_frontier(&log, &[0]), vec![0, 1, 2]);
        assert_eq!(dirty_frontier(&log, &[1]), vec![1, 2]);
        assert_eq!(dirty_frontier(&log, &[3]), vec![3, 4]);
        assert_eq!(dirty_frontier(&log, &[2, 4]), vec![2, 4]);
        // Out-of-range seeds are ignored; empty seeds reach nothing.
        assert_eq!(dirty_frontier(&log, &[99]), Vec::<u32>::new());
        assert_eq!(dirty_frontier(&log, &[]), Vec::<u32>::new());
    }

    #[test]
    fn chain_path_sums_latencies_and_gaps() {
        // 0: 0..100, 1: 150..250 (gap 50), 2: 260..400 (gap 10).
        let lcs = vec![
            lc(0, 0, 100, MsgClass::Control),
            lc(1, 150, 250, MsgClass::Data),
            lc(2, 260, 400, MsgClass::Control),
        ];
        let cp = critical_path(&log3(), &lcs);
        assert_eq!(cp.path, vec![0, 1, 2]);
        assert_eq!(cp.length_ps, 100 + 50 + 100 + 10 + 140);
        assert_eq!(cp.dep_gap_ps, 60);
        assert_eq!(cp.blame.total_ps(), 340);
        assert_eq!(cp.acausal_edges, 0);
        assert_eq!(cp.length_ps, cp.blame.total_ps() + cp.dep_gap_ps);
    }

    #[test]
    fn acausal_edge_is_skipped_and_counted() {
        // Replay reordered: dep 1 delivers *after* 2 injects.
        let lcs = vec![
            lc(0, 0, 100, MsgClass::Control),
            lc(1, 150, 500, MsgClass::Data),
            lc(2, 260, 400, MsgClass::Control),
        ];
        let cp = critical_path(&log3(), &lcs);
        assert_eq!(cp.acausal_edges, 1);
        // Longest usable chain is 0 -> 1 (100 + 50 + 350 = 500).
        assert_eq!(cp.path, vec![0, 1]);
        assert_eq!(cp.length_ps, 500);
    }

    #[test]
    fn path_at_least_max_latency_at_most_makespan() {
        let lcs = vec![
            lc(0, 0, 100, MsgClass::Control),
            lc(1, 150, 250, MsgClass::Data),
            lc(2, 260, 400, MsgClass::Control),
        ];
        let cp = critical_path(&log3(), &lcs);
        let max_lat = lcs.iter().map(|l| l.latency_ps()).max().unwrap();
        let makespan = 400; // last delivery − first injection (at t=0)
        assert!(cp.length_ps >= max_lat);
        assert!(cp.length_ps <= makespan);
    }

    #[test]
    fn aggregate_is_exact_per_class() {
        let lcs = vec![
            lc(0, 0, 100, MsgClass::Control),
            lc(1, 0, 60, MsgClass::Data),
            lc(2, 10, 110, MsgClass::Data),
        ];
        let classes = aggregate(&lcs);
        assert_eq!(classes[0].class, "ctrl");
        assert_eq!(classes[0].messages, 1);
        assert_eq!(classes[0].latency_ps, 100);
        assert_eq!(classes[0].breakdown.total_ps(), 100);
        assert_eq!(classes[1].messages, 2);
        assert_eq!(classes[1].latency_ps, 160);
        assert_eq!(classes[1].breakdown.total_ps(), 160);
    }

    #[test]
    fn report_exports_json_and_folded() {
        let lcs = vec![
            lc(0, 0, 100, MsgClass::Control),
            lc(1, 150, 250, MsgClass::Data),
        ];
        let log = TraceLog {
            records: vec![rec(0, vec![]), rec(1, vec![0])],
            capture_net: "test",
            capture_exec_time: SimTime::from_ps(300),
        };
        let r = analyze("omesh", "fft", &log, &lcs);
        let json = r.to_json();
        assert!(json.contains("\"network\": \"omesh\""));
        assert!(json.contains("\"length_ps\": 250"));
        assert!(json.contains("\"queue_ps\":"));
        let folded = r.to_folded();
        assert!(folded.contains("omesh;ctrl;queue 50"));
        assert!(folded.contains("omesh;critical-path;dep-gap 50"));
        // Folded values parse as "<stack> <int>" lines.
        for line in folded.lines() {
            let (stack, v) = line.rsplit_once(' ').unwrap();
            assert!(stack.split(';').count() == 3);
            v.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let cp = critical_path(&TraceLog::default(), &[]);
        assert_eq!(cp.length_ps, 0);
        assert!(cp.path.is_empty());
        let r = analyze("x", "y", &TraceLog::default(), &[]);
        assert_eq!(r.messages, 0);
        assert!(r.to_folded().is_empty());
    }
}
