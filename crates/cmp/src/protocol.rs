//! Directory coherence protocol vocabulary and capture hooks.
//!
//! The CMP uses a MESI-lite full-map directory protocol: private L1s in
//! S/M states, a home directory slice per tile, shared L2 data tags as a
//! memory-traffic filter. Every protocol hop is a [`ProtocolMsg`]
//! carried as one network message — the traffic the paper's trace model
//! captures.
//!
//! The [`TraceHook`] is the instrumentation boundary: the execution-
//! driven simulator reports every injection (with its *causal
//! dependencies* — the deliveries that enabled it) and every delivery.
//! `sctm-trace` implements the hook to build trace logs; a [`NullHook`]
//! keeps the fast path free when tracing is off.

use crate::cache::LineAddr;
use sctm_engine::net::{Message, MsgId};
use sctm_engine::time::SimTime;

/// Maximum cores supported by the fixed-width sharer bitset. 1024
/// admits the side-32 photonic meshes the §P10 trace-format experiment
/// scales to; the word-array walk in `count`/`iter` stays cheap because
/// real sharer sets are sparse.
pub const MAX_CORES: usize = 1024;

/// Fixed-size sharer set (supports up to [`MAX_CORES`] cores).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Sharers {
    words: [u64; MAX_CORES / 64],
}

impl Sharers {
    pub fn empty() -> Self {
        Self::default()
    }

    pub fn single(core: usize) -> Self {
        let mut s = Self::default();
        s.insert(core);
        s
    }

    #[inline]
    pub fn insert(&mut self, core: usize) {
        debug_assert!(core < MAX_CORES);
        self.words[core / 64] |= 1 << (core % 64);
    }

    #[inline]
    pub fn remove(&mut self, core: usize) {
        self.words[core / 64] &= !(1 << (core % 64));
    }

    #[inline]
    pub fn contains(&self, core: usize) -> bool {
        self.words[core / 64] & (1 << (core % 64)) != 0
    }

    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Directory state of one line at its home slice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirState {
    /// No L1 holds the line.
    Uncached,
    /// Read-only copies at the given cores.
    Shared(Sharers),
    /// A single L1 holds the line writable.
    Modified(u16),
}

/// The wire-visible coherence messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolMsg {
    /// Read request: core → home.
    GetS { line: LineAddr, requester: u16 },
    /// Write/ownership request: core → home.
    GetX { line: LineAddr, requester: u16 },
    /// Cache-line fill: home → core.
    Data {
        line: LineAddr,
        to: u16,
        grant_m: bool,
    },
    /// Ownership ack without data (upgrade hit): home → core.
    UpgAck { line: LineAddr, to: u16 },
    /// Recall of a modified line: home → owner.
    Fetch { line: LineAddr, owner: u16 },
    /// Owner no longer has the line (its writeback is in flight).
    FetchMiss { line: LineAddr },
    /// Invalidate a shared copy: home → sharer.
    Inv { line: LineAddr, target: u16 },
    /// Invalidation acknowledgement: sharer → home.
    InvAck { line: LineAddr },
    /// Dirty data to home (voluntary eviction or fetch response).
    WbData { line: LineAddr },
    /// L2-miss fill request: home → memory controller.
    MemReq { line: LineAddr },
    /// Memory fill data: memory controller → home.
    MemResp { line: LineAddr },
    /// Dirty L2 victim to memory: home → memory controller.
    WbMem { line: LineAddr },
    /// Barrier arrival: core → barrier master.
    BarArrive { id: u32, core: u16 },
    /// Barrier release: master → core.
    BarRelease { id: u32 },
}

impl ProtocolMsg {
    /// Whether this message carries a cache line (data class) or just a
    /// header (control class).
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            ProtocolMsg::Data { .. }
                | ProtocolMsg::WbData { .. }
                | ProtocolMsg::MemResp { .. }
                | ProtocolMsg::WbMem { .. }
        )
    }

    pub fn line(&self) -> Option<LineAddr> {
        match *self {
            ProtocolMsg::GetS { line, .. }
            | ProtocolMsg::GetX { line, .. }
            | ProtocolMsg::Data { line, .. }
            | ProtocolMsg::UpgAck { line, .. }
            | ProtocolMsg::Fetch { line, .. }
            | ProtocolMsg::FetchMiss { line }
            | ProtocolMsg::Inv { line, .. }
            | ProtocolMsg::InvAck { line }
            | ProtocolMsg::WbData { line }
            | ProtocolMsg::MemReq { line }
            | ProtocolMsg::MemResp { line }
            | ProtocolMsg::WbMem { line } => Some(line),
            ProtocolMsg::BarArrive { .. } | ProtocolMsg::BarRelease { .. } => None,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolMsg::GetS { .. } => "GetS",
            ProtocolMsg::GetX { .. } => "GetX",
            ProtocolMsg::Data { .. } => "Data",
            ProtocolMsg::UpgAck { .. } => "UpgAck",
            ProtocolMsg::Fetch { .. } => "Fetch",
            ProtocolMsg::FetchMiss { .. } => "FetchMiss",
            ProtocolMsg::Inv { .. } => "Inv",
            ProtocolMsg::InvAck { .. } => "InvAck",
            ProtocolMsg::WbData { .. } => "WbData",
            ProtocolMsg::MemReq { .. } => "MemReq",
            ProtocolMsg::MemResp { .. } => "MemResp",
            ProtocolMsg::WbMem { .. } => "WbMem",
            ProtocolMsg::BarArrive { .. } => "BarArrive",
            ProtocolMsg::BarRelease { .. } => "BarRelease",
        }
    }
}

/// One instruction-stream element delivered by a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Local computation for the given number of core cycles.
    Compute(u64),
    /// Read the byte address.
    Load(u64),
    /// Write the byte address.
    Store(u64),
    /// Global barrier with a monotonically increasing id.
    Barrier(u32),
    /// Core is done.
    Halt,
}

/// A multi-threaded workload: one deterministic op stream per core.
///
/// `Send` so boxed workloads can move onto the shard worker threads of
/// the parallel capture runner; every implementor is plain owned data.
pub trait Workload: Send {
    /// Number of cores this instance was built for.
    fn num_cores(&self) -> usize;
    /// Next op for `core`. Must eventually return [`Op::Halt`] and keep
    /// returning it afterwards. Barrier ids must be identical across
    /// cores and strictly increasing.
    fn next_op(&mut self, core: usize) -> Op;
    /// Short label for reports.
    fn name(&self) -> &'static str;
}

/// Injection-side trace record handed to the capture hook.
#[derive(Clone, Debug)]
pub struct InjectRecord {
    pub msg: Message,
    /// When the message enters the source NI.
    pub at: SimTime,
    /// Deliveries whose completion enabled this injection (full causal
    /// knowledge; may be empty for spontaneous first messages).
    pub deps: Vec<MsgId>,
    /// Previous message injected by the same node, if any (per-endpoint
    /// program order — the *partial* knowledge the paper's trace model
    /// relies on).
    pub prev_same_src: Option<MsgId>,
    /// Protocol kind label for diagnostics.
    pub kind: &'static str,
}

/// Capture interface implemented by `sctm-trace`.
pub trait TraceHook {
    fn on_inject(&mut self, rec: InjectRecord);
    fn on_deliver(&mut self, id: MsgId, at: SimTime);
}

/// Zero-cost hook for untraced runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHook;

impl TraceHook for NullHook {
    #[inline]
    fn on_inject(&mut self, _rec: InjectRecord) {}
    #[inline]
    fn on_deliver(&mut self, _id: MsgId, _at: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharers_insert_remove_contains() {
        let mut s = Sharers::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(255);
        assert_eq!(s.count(), 4);
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(!s.contains(1));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn sharers_iter_in_order() {
        let mut s = Sharers::empty();
        for c in [5usize, 70, 3, 200] {
            s.insert(c);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![3, 5, 70, 200]);
    }

    #[test]
    fn sharers_single() {
        let s = Sharers::single(77);
        assert_eq!(s.count(), 1);
        assert!(s.contains(77));
    }

    #[test]
    fn data_class_split() {
        let l = LineAddr(1);
        assert!(ProtocolMsg::Data {
            line: l,
            to: 0,
            grant_m: false
        }
        .is_data());
        assert!(ProtocolMsg::WbData { line: l }.is_data());
        assert!(!ProtocolMsg::GetS {
            line: l,
            requester: 0
        }
        .is_data());
        assert!(!ProtocolMsg::InvAck { line: l }.is_data());
        assert!(!ProtocolMsg::BarArrive { id: 0, core: 0 }.is_data());
    }

    #[test]
    fn line_extraction() {
        let l = LineAddr(42);
        assert_eq!(ProtocolMsg::Fetch { line: l, owner: 1 }.line(), Some(l));
        assert_eq!(ProtocolMsg::BarRelease { id: 3 }.line(), None);
    }
}
