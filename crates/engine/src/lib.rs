//! # sctm-engine — discrete-event simulation kernel
//!
//! The foundation shared by every simulator in the SCTM workspace
//! (electrical NoC, optical NoC, CMP full-system model, trace replay).
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Two runs with the same configuration and seed must
//!    produce bit-identical statistics. The event queue breaks timestamp
//!    ties by insertion sequence number, and all randomness flows through
//!    [`rng::StreamRng`] which derives independent named streams from one
//!    master seed.
//! 2. **Fixed-point time.** Simulated time is an integer count of
//!    picoseconds ([`time::SimTime`]). Floating point never touches the
//!    timeline, so accumulation error cannot desynchronise components
//!    running at different clock frequencies.
//! 3. **Cheap statistics.** [`stats`] provides counters, streaming
//!    mean/variance, and log-scaled histograms whose hot-path cost is a
//!    few integer ops, so instrumentation can stay on in benchmarks.
//!
//! The kernel is intentionally minimal: components schedule typed events
//! on an [`event::EventQueue`] and are advanced by their owning
//! simulator. There is no global scheduler object; each simulator (e.g.
//! `sctm_enoc::NocSim`) owns its queue. This keeps the kernel free of
//! `dyn` dispatch on the hot path and makes simulators trivially `Send`
//! for parallel parameter sweeps.

pub mod event;
pub mod hash;
pub mod msgtable;
pub mod net;
pub mod par;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;

pub use event::{EventQueue, QueuedEvent};
pub use msgtable::MsgTable;
pub use net::{
    AnalyticNetwork, Delivery, Message, MsgClass, MsgId, NetStats, NetworkModel, NodeId,
};
pub use par::{num_threads, par_map, serial_map};
pub use rng::StreamRng;
pub use stats::{Counter, Histogram, Running};
pub use table::{csv_row, Table};
pub use time::{Cycles, Freq, SimTime, PS_PER_NS, PS_PER_US};
