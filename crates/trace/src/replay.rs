//! Trace replay engines.
//!
//! Three engines, using strictly increasing amounts of trace knowledge:
//!
//! 1. [`replay_fixed`] — the **classic trace model** (the strawman the
//!    paper improves on): inject every message at its capture
//!    timestamp. The timing feedback loop is lost: if the target
//!    network is slower or faster than the capture network, dependent
//!    messages are injected at the wrong times and error compounds.
//! 2. [`replay_sctm_pass`] — the **paper's self-correction trace
//!    model**: knowledge is per-endpoint program order plus the
//!    arrival-gating pairing computable from a plain network trace
//!    ([`TraceLog::arrival_gates`]). Injections are derived from the
//!    replay's *own* delivery times (the timeline corrects itself
//!    forward in time); the outer loop in `sctm-core` additionally
//!    corrects the capture model and re-captures until the estimate
//!    stabilises.
//! 3. [`replay_oracle`] — full-causality single-pass replay using the
//!    exact dependency DAG (which our capture can see because it lives
//!    inside the simulator). This is the accuracy ceiling of any
//!    trace-driven method and quantifies how much the gating heuristic
//!    costs.

use crate::log::TraceLog;
use sctm_engine::net::{MsgClass, MsgId, NetworkModel};
use sctm_engine::stats::Running;
use sctm_engine::time::SimTime;
use std::collections::BinaryHeap;

/// Outcome of one replay pass.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// Injection time per message (dense id order).
    pub inject: Vec<SimTime>,
    /// Delivery time per message.
    pub deliver: Vec<SimTime>,
    /// Execution-time estimate: last delivery plus the capture run's
    /// local tail (compute after the final message).
    pub est_exec_time: SimTime,
}

impl ReplayResult {
    fn from_times(log: &TraceLog, inject: Vec<SimTime>, deliver: Vec<SimTime>) -> Self {
        let tail = log
            .capture_exec_time
            .saturating_since(log.last_delivery());
        let last = deliver.iter().copied().max().unwrap_or(SimTime::ZERO);
        ReplayResult { inject, deliver, est_exec_time: last + tail }
    }

    /// Mean message latency in nanoseconds for one class (or all).
    pub fn mean_latency_ns(&self, log: &TraceLog, class: Option<MsgClass>) -> f64 {
        let mut acc = Running::new();
        for (i, r) in log.records.iter().enumerate() {
            if class.is_none() || class == Some(r.msg.class) {
                acc.push(
                    self.deliver[i]
                        .saturating_since(self.inject[i])
                        .as_ns_f64(),
                );
            }
        }
        acc.mean()
    }
}

/// Run all messages through `net` at the given injection times.
fn simulate(log: &TraceLog, net: &mut dyn NetworkModel, inject: &[SimTime]) -> Vec<SimTime> {
    assert_eq!(inject.len(), log.len());
    // Inject in time order so `inject`'s internal clamping never fires.
    let mut order: Vec<usize> = (0..log.len()).collect();
    order.sort_by_key(|&i| (inject[i], i));
    for i in order {
        net.inject(inject[i], log.records[i].msg);
    }
    let mut deliver = vec![SimTime::ZERO; log.len()];
    let mut out = Vec::with_capacity(log.len());
    net.drain(&mut out);
    assert_eq!(out.len(), log.len(), "replay lost messages");
    for d in out {
        deliver[d.msg.id.0 as usize] = d.delivered_at;
    }
    deliver
}

/// Classic trace-driven replay: capture timestamps, verbatim.
pub fn replay_fixed(log: &TraceLog, net: &mut dyn NetworkModel) -> ReplayResult {
    let inject: Vec<SimTime> = log.records.iter().map(|r| r.t_inject).collect();
    let deliver = simulate(log, net, &inject);
    ReplayResult::from_times(log, inject, deliver)
}

/// Full-causality event-driven replay (accuracy ceiling).
///
/// Message *m* is injected `delta(m)` after the last of its dependencies
/// delivers in the *replay* timeline, where `delta` is the capture-time
/// local processing delay. Dependency-free messages keep their capture
/// times (their timing is network-independent by construction).
pub fn replay_oracle(log: &TraceLog, net: &mut dyn NetworkModel) -> ReplayResult {
    let n = log.len();
    // delta and reverse edges
    let mut delta = vec![SimTime::ZERO; n];
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut remaining = vec![0u32; n];
    for (i, r) in log.records.iter().enumerate() {
        if r.deps.is_empty() {
            delta[i] = r.t_inject;
        } else {
            let enable = r.deps.iter().map(|d| log.rec(*d).t_deliver).max().unwrap();
            delta[i] = r.t_inject.saturating_since(enable);
            remaining[i] = r.deps.len() as u32;
            for d in &r.deps {
                children[d.0 as usize].push(i as u32);
            }
        }
    }
    let mut inject = vec![SimTime::MAX; n];
    let mut ready_at = vec![SimTime::ZERO; n]; // max dep delivery so far
    // Pending injections we already know the time of, not yet injected.
    let mut heap: BinaryHeap<std::cmp::Reverse<(SimTime, u32)>> = BinaryHeap::new();
    for (i, r) in log.records.iter().enumerate() {
        if r.deps.is_empty() {
            heap.push(std::cmp::Reverse((delta[i], i as u32)));
        }
    }
    let mut deliver = vec![SimTime::ZERO; n];
    let mut delivered = 0usize;
    let mut buf = Vec::new();
    while delivered < n {
        // Inject every pending message that is due at or before the
        // network's next internal event (its network effects may precede
        // that event); with an idle network, inject the earliest one to
        // re-arm it.
        while let Some(&std::cmp::Reverse((t, i))) = heap.peek() {
            match net.next_time() {
                Some(h) if t > h => break,
                _ => {
                    heap.pop();
                    inject[i as usize] = t;
                    net.inject(t, log.records[i as usize].msg);
                }
            }
        }
        let t = net
            .next_time()
            .expect("replay deadlocked: messages undelivered but nothing pending");
        buf.clear();
        net.advance_until(t, &mut buf);
        for d in buf.drain(..) {
            let id = d.msg.id.0 as usize;
            deliver[id] = d.delivered_at;
            delivered += 1;
            for &c in &children[id] {
                let c = c as usize;
                ready_at[c] = ready_at[c].max(d.delivered_at);
                remaining[c] -= 1;
                if remaining[c] == 0 {
                    heap.push(std::cmp::Reverse((ready_at[c] + delta[c], c as u32)));
                }
            }
        }
    }
    ReplayResult::from_times(log, inject, deliver)
}

/// The self-correcting replay pass — how the SCTM injects a trace into
/// a target network.
///
/// Event-driven: every departure is injected `delta` after its gating
/// arrival delivers **in the replay timeline** (per-source capture order
/// enforced), so the timeline corrects itself forward in time as the
/// pass runs instead of replaying stale capture timestamps. `delta` and
/// the gating pairing come from the capture timeline
/// ([`TraceLog::arrival_gates`]).
///
/// One pass is self-consistent (injections are derived from this pass's
/// own deliveries); residual error against execution-driven simulation
/// comes from mis-paired gates, which the *outer* self-correction loop
/// in `sctm-core` attacks by correcting the capture model itself and
/// re-capturing.
pub fn replay_sctm_pass(log: &TraceLog, net: &mut dyn NetworkModel) -> ReplayResult {
    let gates = log.arrival_gates();
    gated_pass(log, net, &gates, false)
}

/// Ablation variant of [`replay_sctm_pass`] that *enforces per-source
/// capture order* on gated departures. Physically plausible-sounding,
/// but measurably worse: when the target's latency profile reorders a
/// node's traffic (hybrid control/data planes, token arbitration), the
/// ordering constraint inflates the timeline. Kept for the ablation
/// bench (A1).
pub fn replay_sctm_pass_ordered(log: &TraceLog, net: &mut dyn NetworkModel) -> ReplayResult {
    let gates = log.arrival_gates();
    gated_pass(log, net, &gates, true)
}

/// The gated event-driven pass over an explicit gate assignment.
fn gated_pass(
    log: &TraceLog,
    net: &mut dyn NetworkModel,
    gates: &[Option<MsgId>],
    enforce_source_order: bool,
) -> ReplayResult {
    let n = log.len();
    let order = log.per_source_order();

    // Per-source predecessors and capture injection gaps.
    let mut prev_in_order: Vec<Option<u32>> = vec![None; n];
    for seq in &order {
        for w in seq.windows(2) {
            prev_in_order[w[1].0 as usize] = Some(w[0].0 as u32);
        }
    }
    // Capture-anchored deltas: local time between the gating delivery
    // (or the previous departure, for gate-less messages) and this
    // departure, measured on the capture timeline.
    let mut delta = vec![SimTime::ZERO; n];
    for (i, r) in log.records.iter().enumerate() {
        let anchor = match gates[i] {
            Some(g) => log.rec(g).t_deliver,
            None => prev_in_order[i]
                .map(|p| log.records[p as usize].t_inject)
                .unwrap_or(SimTime::ZERO),
        };
        delta[i] = r.t_inject.saturating_since(anchor);
    }

    // Readiness: a message needs its gate delivered (if any) and its
    // per-source predecessor injected (if any).
    let mut gate_done = vec![false; n];
    let mut gate_time = vec![SimTime::ZERO; n];
    let mut prev_done = vec![false; n];
    let mut prev_time = vec![SimTime::ZERO; n];
    // Reverse index: gate -> dependants.
    let mut gated_by: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, g) in gates.iter().enumerate() {
        match g {
            Some(g) => gated_by[g.0 as usize].push(i as u32),
            None => {
                gate_done[i] = true;
            }
        }
    }
    for (i, p) in prev_in_order.iter().enumerate() {
        // Gated messages do not wait on their per-source predecessor:
        // a node's departures may legitimately reorder when the target
        // network's latency profile differs from capture (e.g. a hybrid
        // optical design where control and data planes diverge), and
        // forcing capture order inflates the timeline measurably.
        if p.is_none() || (!enforce_source_order && !gate_done[i]) {
            prev_done[i] = true;
        }
    }
    // Successor in per-source order, to propagate injection readiness.
    let mut next_in_order: Vec<Option<u32>> = vec![None; n];
    for (i, p) in prev_in_order.iter().enumerate() {
        if let Some(p) = *p {
            next_in_order[p as usize] = Some(i as u32);
        }
    }

    let mut inject = vec![SimTime::MAX; n];
    let mut deliver = vec![SimTime::ZERO; n];
    let mut scheduled = vec![false; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(SimTime, u32)>> = BinaryHeap::new();

    // Seed: messages with no gate and no predecessor.
    let mut seed_ready: Vec<u32> = (0..n as u32)
        .filter(|&i| gate_done[i as usize] && prev_done[i as usize])
        .collect();
    seed_ready.sort_unstable();
    for i in seed_ready {
        let t = delta[i as usize];
        scheduled[i as usize] = true;
        heap.push(std::cmp::Reverse((t, i)));
    }

    let mut delivered = 0usize;
    let mut buf = Vec::new();
    while delivered < n {
        while let Some(&std::cmp::Reverse((t, i))) = heap.peek() {
            match net.next_time() {
                Some(h) if t > h => break,
                _ => {
                    heap.pop();
                    let i = i as usize;
                    inject[i] = t;
                    net.inject(t, log.records[i].msg);
                    // Unblock the per-source successor (only gate-less
                    // successors wait on their predecessor).
                    if let Some(nx) = next_in_order[i] {
                        let nx = nx as usize;
                        prev_done[nx] = true;
                        prev_time[nx] = t;
                        if gate_done[nx] && !scheduled[nx] {
                            let base = if gates[nx].is_some() {
                                gate_time[nx]
                            } else {
                                prev_time[nx]
                            };
                            let t = (base + delta[nx]).max(prev_time[nx]);
                            scheduled[nx] = true;
                            heap.push(std::cmp::Reverse((t, nx as u32)));
                        }
                    }
                }
            }
        }
        let t = net
            .next_time()
            .expect("gated replay deadlocked: undelivered messages but nothing pending");
        buf.clear();
        net.advance_until(t, &mut buf);
        for d in buf.drain(..) {
            let id = d.msg.id.0 as usize;
            deliver[id] = d.delivered_at;
            delivered += 1;
            for &g in &gated_by[id] {
                let g = g as usize;
                gate_done[g] = true;
                gate_time[g] = d.delivered_at;
                if prev_done[g] && !scheduled[g] {
                    let t = (gate_time[g] + delta[g]).max(prev_time[g]);
                    scheduled[g] = true;
                    heap.push(std::cmp::Reverse((t, g as u32)));
                }
            }
        }
    }
    ReplayResult::from_times(log, inject, deliver)
}

/// Per-(src, dst, class) multiplicative correction factors derived from
/// one replay: observed replay latency divided by the capture model's
/// predicted base latency (`base_latency` is supplied by the caller —
/// typically [`sctm_engine::net::AnalyticNetwork::base_latency`]).
/// Control and data flows are corrected separately — hybrid optical
/// designs route them through entirely different planes, so one shared
/// factor would poison whichever class is in the minority.
///
/// These are what the outer self-correction loop feeds back into the
/// capture model before re-capturing.
pub fn pair_corrections(
    log: &TraceLog,
    result: &ReplayResult,
    mut base_latency: impl FnMut(&sctm_engine::net::Message) -> SimTime,
) -> Vec<((u32, u32, MsgClass), f64)> {
    use std::collections::HashMap;
    let mut acc: HashMap<(u32, u32, u8), (f64, f64)> = HashMap::new();
    for (i, r) in log.records.iter().enumerate() {
        let lat = result.deliver[i].saturating_since(result.inject[i]).as_ps() as f64;
        let base = base_latency(&r.msg).as_ps() as f64;
        let c = match r.msg.class {
            MsgClass::Control => 0u8,
            MsgClass::Data => 1,
        };
        let e = acc.entry((r.msg.src.0, r.msg.dst.0, c)).or_insert((0.0, 0.0));
        e.0 += lat;
        e.1 += base;
    }
    let mut out: Vec<((u32, u32, MsgClass), f64)> = acc
        .into_iter()
        .filter(|(_, (_, base))| *base > 0.0)
        .map(|((s, d, c), (lat, base))| {
            let class = if c == 0 { MsgClass::Control } else { MsgClass::Data };
            ((s, d, class), lat / base)
        })
        .collect();
    out.sort_by_key(|&((s, d, c), _)| (s, d, c == MsgClass::Data));
    out
}

/// Estimate per-destination ejection serialisation from one replay, in
/// picoseconds per byte.
///
/// Mean-latency pair corrections cannot express a *single-reader*
/// bottleneck (an MWSR home channel serialises every writer; latency
/// depends on load, not on the pair). The fastest sustained spacing of
/// consecutive deliveries at a node reveals its service rate: we take
/// the 25th percentile of per-byte delivery gaps and report it only
/// when it shows genuine back-to-back operation (below
/// `SATURATION_THRESHOLD_PS_PER_BYTE`), so uncongested destinations are
/// left unserialised.
pub fn dst_service_estimates(log: &TraceLog, result: &ReplayResult) -> Vec<(u32, u64)> {
    const MIN_SAMPLES: usize = 48;
    const SATURATION_THRESHOLD_PS_PER_BYTE: f64 = 60.0;
    use std::collections::HashMap;
    let mut per_dst: HashMap<u32, Vec<(SimTime, u32)>> = HashMap::new();
    for (i, r) in log.records.iter().enumerate() {
        per_dst
            .entry(r.msg.dst.0)
            .or_default()
            .push((result.deliver[i], r.msg.bytes.max(1)));
    }
    let mut out = Vec::new();
    for (dst, mut dl) in per_dst {
        if dl.len() < MIN_SAMPLES {
            continue;
        }
        dl.sort_unstable_by_key(|&(t, _)| t);
        let mut gaps_per_byte: Vec<f64> = dl
            .windows(2)
            .filter_map(|w| {
                let gap = w[1].0.saturating_since(w[0].0).as_ps();
                if gap == 0 {
                    None // simultaneous deliveries carry no rate signal
                } else {
                    Some(gap as f64 / w[1].1 as f64)
                }
            })
            .collect();
        if gaps_per_byte.len() < MIN_SAMPLES / 2 {
            continue;
        }
        gaps_per_byte.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let p25 = gaps_per_byte[gaps_per_byte.len() / 4];
        if p25 > 0.0 && p25 <= SATURATION_THRESHOLD_PS_PER_BYTE {
            out.push((dst, p25.round() as u64));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Capture;
    use sctm_cmp::{CmpConfig, CmpSim};
    use sctm_engine::net::AnalyticNetwork;
    use sctm_workloads::{build, Kernel, WorkloadParams};

    fn analytic(nodes: usize, per_hop_ns: u64) -> Box<dyn NetworkModel> {
        Box::new(AnalyticNetwork::new(
            nodes,
            SimTime::from_ns(8),
            SimTime::from_ns(per_hop_ns),
            10,
        ))
    }

    /// Capture an fft trace on a fast analytic network.
    fn capture_fft(cores: usize) -> TraceLog {
        let side = (cores as f64).sqrt() as usize;
        let w = build(Kernel::Fft, WorkloadParams::new(cores, 300, 7));
        let cfg = CmpConfig::tiled(side);
        let mut sim = CmpSim::new(cfg, analytic(cores, 2), Box::new(w));
        let mut cap = Capture::new();
        let res = sim.run(&mut cap);
        cap.finish("analytic", res.exec_time)
    }

    #[test]
    fn captured_log_is_wellformed() {
        let log = capture_fft(16);
        assert!(log.len() > 100, "only {} messages", log.len());
        assert_eq!(log.validate(), Ok(()));
    }

    #[test]
    fn fixed_replay_on_capture_network_reproduces_capture() {
        let log = capture_fft(16);
        let mut net = analytic(16, 2);
        let r = replay_fixed(&log, net.as_mut());
        // Same network, same injection times → identical deliveries
        // (the analytic network is contention-free).
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(r.deliver[i], rec.t_deliver, "msg {i} diverged");
        }
        assert_eq!(r.est_exec_time, log.capture_exec_time);
    }

    #[test]
    fn oracle_replay_on_capture_network_reproduces_capture() {
        let log = capture_fft(16);
        let mut net = analytic(16, 2);
        let r = replay_oracle(&log, net.as_mut());
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(
                r.deliver[i], rec.t_deliver,
                "msg {i} ({}) diverged: {:?} vs {:?}",
                rec.kind, r.deliver[i], rec.t_deliver
            );
        }
    }

    #[test]
    fn sctm_pass_on_capture_network_reproduces_capture() {
        // On the network the trace was captured on, the gated pass must
        // reconstruct the capture timeline exactly (gates and deltas are
        // self-consistent there).
        let log = capture_fft(16);
        let mut net = analytic(16, 2);
        let got = replay_sctm_pass(&log, net.as_mut());
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(
                got.deliver[i], rec.t_deliver,
                "msg {i} ({}) diverged",
                rec.kind
            );
        }
    }

    #[test]
    fn oracle_tracks_slower_target_network() {
        // Replaying on a 3x slower network must stretch the timeline;
        // the oracle estimate should match an actual execution-driven
        // run on that network closely.
        let log = capture_fft(16);
        let mut net = analytic(16, 6);
        let r = replay_oracle(&log, net.as_mut());

        // Reference: execution-driven on the slow network.
        let w = build(Kernel::Fft, WorkloadParams::new(16, 300, 7));
        let mut sim = CmpSim::new(CmpConfig::tiled(4), analytic(16, 6), Box::new(w));
        let reference = sim.run(&mut sctm_cmp::NullHook);

        let err = (r.est_exec_time.as_ps() as f64 - reference.exec_time.as_ps() as f64).abs()
            / reference.exec_time.as_ps() as f64;
        assert!(
            err < 0.02,
            "oracle exec-time error {:.1}% (est {}, ref {})",
            err * 100.0,
            r.est_exec_time,
            reference.exec_time
        );
    }

    #[test]
    fn sctm_pass_beats_classic_on_slower_target() {
        let log = capture_fft(16);
        // Target: 3x slower per-hop latency than capture.
        let w = build(Kernel::Fft, WorkloadParams::new(16, 300, 7));
        let mut sim = CmpSim::new(CmpConfig::tiled(4), analytic(16, 6), Box::new(w));
        let reference = sim.run(&mut sctm_cmp::NullHook).exec_time.as_ps() as f64;

        let mut net = analytic(16, 6);
        let classic = replay_fixed(&log, net.as_mut()).est_exec_time.as_ps() as f64;
        let mut net = analytic(16, 6);
        let sctm = replay_sctm_pass(&log, net.as_mut()).est_exec_time.as_ps() as f64;

        let err_classic = (classic - reference).abs() / reference;
        let err_sctm = (sctm - reference).abs() / reference;
        assert!(
            err_sctm < err_classic,
            "self-correction ({:.1}%) did not beat classic ({:.1}%)",
            err_sctm * 100.0,
            err_classic * 100.0
        );
        assert!(
            err_sctm < 0.10,
            "self-correction error too large: {:.1}%",
            err_sctm * 100.0
        );
    }

    #[test]
    fn pair_corrections_detect_slowdown() {
        let log = capture_fft(16);
        // Replay on a 3x-per-hop target and derive corrections against
        // the capture model's base latency.
        let capture_model = sctm_engine::net::AnalyticNetwork::new(
            16,
            SimTime::from_ns(8),
            SimTime::from_ns(2),
            10,
        );
        let mut net = analytic(16, 6);
        let r = replay_sctm_pass(&log, net.as_mut());
        let corr = pair_corrections(&log, &r, |m| capture_model.base_latency(m));
        assert!(!corr.is_empty());
        let mean: f64 = corr.iter().map(|(_, f)| f).sum::<f64>() / corr.len() as f64;
        assert!(
            mean > 1.2,
            "slower target should push correction factors above 1: mean={mean:.2}"
        );
        // All factors positive and finite.
        assert!(corr.iter().all(|(_, f)| f.is_finite() && *f > 0.0));
    }

    #[test]
    fn replay_injects_every_message_exactly_once() {
        let log = capture_fft(16);
        let mut net = analytic(16, 3);
        let r = replay_oracle(&log, net.as_mut());
        assert_eq!(r.inject.len(), log.len());
        assert!(r.inject.iter().all(|t| *t != SimTime::MAX));
        assert!(r.deliver.iter().zip(&r.inject).all(|(d, i)| d >= i));
    }
}
