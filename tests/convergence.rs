//! Convergence-observability contract (PR8 tentpole): the drift
//! ledger, the divergence detectors, and the incremental-replay
//! decision telemetry, pinned end to end.
//!
//! Three layers of guarantee:
//!
//! 1. **Decision telemetry is truthful.** The 64-core fft flagship —
//!    the documented §P6 case where every re-capture changes the trace
//!    length — must report `full` passes caused by `length_churn`,
//!    while a run whose correction table cannot move (damping 0)
//!    produces an identical second capture and must report `spliced`.
//! 2. **Detectors fire on the arithmetic they claim to detect.** A
//!    deterministic feedback fixture (measured = target + β·(target −
//!    installed)) oscillates forever undamped and converges once
//!    damped; the verdicts must follow.
//! 3. **Telemetry never touches results.** The service result JSON —
//!    the deterministic simulated-quantity manifest — must be
//!    byte-identical with conv telemetry on and off, at capture thread
//!    counts 1 and 4.

use sctm::obs::{self, ConvergenceVerdict};
use sctm::prelude::*;
use std::sync::Mutex;

/// Conv telemetry and the metric registry are process-global; tests
/// that flip `obs::set_enabled` or read `conv_snapshot` serialize here.
static OBS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS.lock().unwrap_or_else(|p| p.into_inner())
}

/// The §P6 flagship: 64-core fft, where self-correction changes the
/// message mix — and therefore the trace length — on every iteration,
/// so incremental replay must fall back to full passes and say why.
#[test]
fn flagship_reports_full_passes_caused_by_length_churn() {
    let _g = lock();
    obs::set_enabled(true);
    obs::reset_conv();
    let exp = Experiment::new(SystemConfig::new(8, NetworkKind::Omesh), Kernel::Fft).with_ops(160);
    let out = exp
        .execute(&RunSpec::self_correction(3))
        .expect("valid spec");
    obs::set_enabled(false);
    obs::drain();

    let runs = obs::conv_snapshot();
    obs::reset_conv();
    let run = runs
        .iter()
        .find(|r| r.network == "omesh" && r.workload == "fft")
        .expect("flagship run recorded");
    assert!(run.iterations.len() >= 2, "flagship exited too early");

    let first = run.iterations[0].incr.as_ref().expect("iter 1 decision");
    assert_eq!(first.kind, "full");
    assert_eq!(first.cause, Some("first_pass"));

    let second = run.iterations[1].incr.as_ref().expect("iter 2 decision");
    assert_eq!(
        second.kind, "full",
        "flagship iteration 2 should fall back to a full pass"
    );
    assert_eq!(
        second.cause,
        Some("length_churn"),
        "the fallback cause must be the trace-length change (prev {} vs {})",
        second.prev_len,
        second.trace_len
    );
    assert_ne!(
        second.trace_len, second.prev_len,
        "length_churn reported but lengths match"
    );
    assert!(out.report.verdict.is_some(), "run carries no verdict");
}

/// Damping 0 freezes the correction table, so the second capture is
/// message-for-message identical to the first: the dirty set is empty
/// and the pass must splice, then exit on zero drift.
#[test]
fn frozen_factors_report_spliced_and_converge_on_drift() {
    let _g = lock();
    obs::set_enabled(true);
    obs::reset_conv();
    let exp = Experiment::new(SystemConfig::new(4, NetworkKind::Omesh), Kernel::Fft).with_ops(160);
    let out = exp
        .execute(
            &RunSpec::self_correction(3)
                .with_damping(0.0)
                .with_factor_epsilon(0.0),
        )
        .expect("valid spec");
    obs::set_enabled(false);
    obs::drain();

    let runs = obs::conv_snapshot();
    obs::reset_conv();
    let run = runs
        .iter()
        .find(|r| r.network == "omesh" && r.workload == "fft")
        .expect("run recorded");
    assert!(run.iterations.len() >= 2, "needs a second capture");
    let second = run.iterations[1].incr.as_ref().expect("iter 2 decision");
    assert_eq!(
        second.kind, "spliced",
        "identical re-capture should splice, not replay (cause {:?})",
        second.cause
    );
    assert_eq!(second.dirty, 0, "identical capture left a dirty set");
    assert_eq!(out.report.verdict, Some(ConvergenceVerdict::ConvergedDrift));
    assert_eq!(run.verdict, ConvergenceVerdict::ConvergedDrift);
}

/// Deterministic feedback fixture mirroring the loop's exit and
/// verdict arithmetic. Each iteration measures
/// `measured = target + beta * (target - installed)` — the measured
/// time overshoots by however much the installed correction missed —
/// and installs `(1-alpha)*installed + alpha*measured`. Exactly the
/// drift exit (0.5% of the estimate) and history the real loop keeps.
fn fixture_verdict(alpha: f64, beta: f64, max_iters: usize) -> ConvergenceVerdict {
    let target = 1_000_000.0f64;
    let mut installed = 800_000.0f64;
    let mut prev_est = installed;
    let mut drift_hist: Vec<u64> = Vec::new();
    let mut signed_hist: Vec<f64> = Vec::new();
    let mut last_move = 0.0f64;
    for _ in 1..=max_iters {
        let measured = target + beta * (target - installed);
        let next = (1.0 - alpha) * installed + alpha * measured;
        let signed = next - installed;
        installed = next;
        let drift = (measured - prev_est).abs();
        prev_est = measured;
        drift_hist.push(drift as u64);
        signed_hist.push(signed);
        last_move = signed.abs();
        if drift * 200.0 < measured {
            return ConvergenceVerdict::ConvergedDrift;
        }
    }
    obs::classify_unconverged(&drift_hist, &signed_hist, last_move, 1.0)
}

#[test]
fn oscillation_fixture_fires_undamped_and_clears_damped() {
    // Undamped unit feedback: the installed value leaps to each
    // measurement, the error flips sign with constant magnitude, and
    // the run burns every iteration — the classic oscillation.
    assert_eq!(
        fixture_verdict(1.0, 1.0, 6),
        ConvergenceVerdict::Oscillating
    );
    // Damping 0.4 on the same plant contracts the error by 0.2 per
    // iteration: the drift exit fires within the budget.
    assert_eq!(
        fixture_verdict(0.4, 1.0, 6),
        ConvergenceVerdict::ConvergedDrift
    );
    // Feedback gain past the stability boundary grows the error
    // monotonically; blow-up outranks the sign-flip detector.
    assert_eq!(fixture_verdict(1.0, 1.5, 6), ConvergenceVerdict::Diverging);
}

/// The deterministic result manifest (what `sctmd` returns and the
/// capture cache keys on) must not change by a byte when conv
/// telemetry records, at either capture thread count.
#[test]
fn result_json_is_byte_identical_with_conv_telemetry_on_and_off() {
    let _g = lock();
    let run = |obs_on: bool, threads: usize| {
        obs::set_enabled(obs_on);
        let exp = Experiment::new(SystemConfig::new(4, NetworkKind::Omesh), Kernel::Fft)
            .with_ops(160)
            .with_capture_threads(threads);
        let out = exp
            .execute(&RunSpec::self_correction(3))
            .expect("valid spec");
        obs::set_enabled(false);
        obs::drain();
        obs::reset_conv();
        sctm_srv::result_json(&out.report, &exp)
    };
    for threads in [1usize, 4] {
        let plain = run(false, threads);
        let instrumented = run(true, threads);
        assert_eq!(
            plain, instrumented,
            "conv telemetry changed the result manifest at {threads} capture threads"
        );
        assert!(
            plain.contains(r#""convergence""#),
            "result manifest lost its verdict row"
        );
    }
}
