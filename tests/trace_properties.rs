//! Property-based tests of the trace model's core invariants, driven by
//! randomly parameterised workloads and networks.

use proptest::prelude::*;
use sctm::prelude::*;
use sctm::workloads::{build, WorkloadParams};
use sctm_cmp::{CmpConfig, CmpSim};
use sctm_engine::net::{AnalyticNetwork, NetworkModel};
use sctm_engine::time::SimTime;
use sctm_trace::{replay_fixed, replay_oracle, replay_sctm_pass, Capture, TraceLog};

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    prop_oneof![
        Just(Kernel::Fft),
        Just(Kernel::Lu),
        Just(Kernel::Barnes),
        Just(Kernel::Streamcluster),
        Just(Kernel::Canneal),
    ]
}

fn capture(kernel: Kernel, ops: usize, seed: u64, per_hop_ps: u64) -> TraceLog {
    let w = build(kernel, WorkloadParams::new(16, ops, seed));
    let cfg = CmpConfig::tiled(4);
    let net = AnalyticNetwork::new(16, SimTime::from_ns(8), SimTime::from_ps(per_hop_ps), 40);
    let mut sim = CmpSim::new(cfg, Box::new(net), Box::new(w));
    let mut cap = Capture::new();
    let res = sim.run(&mut cap);
    cap.finish("analytic", res.exec_time)
}

fn target(per_hop_ps: u64) -> Box<dyn NetworkModel> {
    Box::new(AnalyticNetwork::new(
        16,
        SimTime::from_ns(8),
        SimTime::from_ps(per_hop_ps),
        40,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Every capture is structurally valid: dense ids, delivery after
    /// injection, deps delivered before dependants injected.
    #[test]
    fn captures_are_wellformed(
        kernel in kernel_strategy(),
        seed in 1u64..1000,
        ops in 150usize..400,
    ) {
        let log = capture(kernel, ops, seed, 1500);
        prop_assert!(log.len() > 100);
        prop_assert_eq!(log.validate(), Ok(()));
    }

    /// Replay engines conserve messages and never deliver before
    /// injecting, on arbitrary (capture, target) speed mismatches.
    #[test]
    fn replays_conserve_messages(
        kernel in kernel_strategy(),
        seed in 1u64..1000,
        cap_hop in 500u64..4000,
        tgt_hop in 500u64..4000,
    ) {
        let log = capture(kernel, 200, seed, cap_hop);
        for engine in [replay_fixed, replay_sctm_pass, replay_oracle] {
            let mut net = target(tgt_hop);
            let r = engine(&log, net.as_mut());
            prop_assert_eq!(r.inject.len(), log.len());
            prop_assert_eq!(r.deliver.len(), log.len());
            for i in 0..log.len() {
                prop_assert!(r.inject[i] != SimTime::MAX, "msg {} never injected", i);
                prop_assert!(r.deliver[i] >= r.inject[i], "msg {} time travel", i);
            }
        }
    }

    /// On the capture network itself, the self-correcting pass and the
    /// oracle must reconstruct the capture timeline exactly: replaying
    /// a trace where it came from is the identity.
    #[test]
    fn replay_identity_on_capture_network(
        kernel in kernel_strategy(),
        seed in 1u64..1000,
        hop in 500u64..4000,
    ) {
        let log = capture(kernel, 200, seed, hop);
        for engine in [replay_sctm_pass, replay_oracle] {
            let mut net = target(hop);
            let r = engine(&log, net.as_mut());
            for (i, rec) in log.records.iter().enumerate() {
                prop_assert_eq!(
                    r.deliver[i], rec.t_deliver,
                    "msg {} ({}) diverged on identity replay", i, rec.kind
                );
            }
        }
    }

    /// The self-correcting pass tracks the target network at least as
    /// well as the classic fixed-timestamp replay (in execution-time
    /// estimate), for any capture/target mismatch.
    #[test]
    fn sctm_not_worse_than_classic(
        seed in 1u64..200,
        tgt_hop in prop_oneof![Just(400u64), Just(4000), Just(8000)],
    ) {
        let cap_hop = 1500u64;
        let log = capture(Kernel::Fft, 200, seed, cap_hop);

        // Execution-driven reference on the target.
        let w = build(Kernel::Fft, WorkloadParams::new(16, 200, seed));
        let mut sim = CmpSim::new(CmpConfig::tiled(4), target(tgt_hop), Box::new(w));
        let reference = sim.run(&mut sctm_cmp::NullHook).exec_time.as_ps() as f64;

        let mut net = target(tgt_hop);
        let classic = replay_fixed(&log, net.as_mut()).est_exec_time.as_ps() as f64;
        let mut net = target(tgt_hop);
        let sctm = replay_sctm_pass(&log, net.as_mut()).est_exec_time.as_ps() as f64;

        let err_c = (classic - reference).abs() / reference;
        let err_s = (sctm - reference).abs() / reference;
        prop_assert!(
            err_s <= err_c + 0.02,
            "sctm {:.1}% vs classic {:.1}% (target hop {})",
            err_s * 100.0, err_c * 100.0, tgt_hop
        );
    }

    /// Arrival gates are causal: the gate of every departure delivered
    /// at or before the departure, in capture time.
    #[test]
    fn arrival_gates_are_causal(
        kernel in kernel_strategy(),
        seed in 1u64..1000,
    ) {
        let log = capture(kernel, 200, seed, 1500);
        let gates = log.arrival_gates();
        for (i, g) in gates.iter().enumerate() {
            if let Some(g) = g {
                prop_assert!(
                    log.rec(*g).t_deliver <= log.records[i].t_inject,
                    "gate of msg {} delivered after its departure", i
                );
                prop_assert_eq!(
                    log.rec(*g).msg.dst, log.records[i].msg.src,
                    "gate of msg {} arrived at a different node", i
                );
            }
        }
    }
}

#[test]
fn trace_survives_full_self_correction_loop_on_detailed_networks() {
    // Non-proptest smoke over the real optical networks (slower).
    for kind in [NetworkKind::Omesh, NetworkKind::Oxbar] {
        let e = Experiment::new(SystemConfig::new(4, kind), Kernel::Barnes).with_ops(200);
        let r = e
            .execute(&RunSpec::self_correction(3))
            .expect("valid spec")
            .report;
        let iters = r.iterations.as_ref().unwrap();
        assert!(!iters.is_empty());
        assert!(iters.iter().all(|s| s.messages > 100));
        assert!(r.exec_time > SimTime::ZERO);
    }
}
