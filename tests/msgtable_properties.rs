//! Property tests for the dense message table (`sctm_engine::MsgTable`),
//! the slab that replaced `HashMap<u64, _>` on every network model's
//! per-event path: random operation sequences must behave exactly like
//! the hash map they displaced.

use proptest::prelude::*;
use sctm::engine::MsgTable;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Drive a `MsgTable` and a `HashMap` reference model through the
    /// same operation sequence: every return value, every membership
    /// query, and the final contents must agree. Ids are drawn from a
    /// small range so inserts, removes, and misses all collide often.
    #[test]
    fn matches_hashmap_reference(
        ops in prop::collection::vec((0u8..4, 0u64..48, any::<u32>()), 1..400)
    ) {
        let mut table: MsgTable<u32> = MsgTable::new();
        let mut map: HashMap<u64, u32> = HashMap::new();
        for (kind, id, val) in ops {
            match kind {
                0 => prop_assert_eq!(table.insert(id, val), map.insert(id, val)),
                1 => prop_assert_eq!(table.remove(id), map.remove(&id)),
                2 => prop_assert_eq!(table.get(id), map.get(&id)),
                _ => prop_assert_eq!(table.contains(id), map.contains_key(&id)),
            }
            prop_assert_eq!(table.len(), map.len());
            prop_assert_eq!(table.is_empty(), map.is_empty());
        }
        // Final contents, via the id-ordered iterator.
        let mut want: Vec<(u64, u32)> = map.into_iter().collect();
        want.sort_unstable();
        let got: Vec<(u64, u32)> = table.iter().map(|(id, &v)| (id, v)).collect();
        prop_assert_eq!(got, want);
    }

    /// `get_mut` writes must land exactly where `get` reads.
    #[test]
    fn get_mut_is_consistent(
        ids in prop::collection::vec(0u64..32, 1..100),
        bump in any::<u32>()
    ) {
        let mut table: MsgTable<u32> = MsgTable::new();
        let mut map: HashMap<u64, u32> = HashMap::new();
        for id in ids {
            match table.get_mut(id) {
                Some(v) => {
                    *v = v.wrapping_add(bump);
                    let m = map.get_mut(&id).unwrap();
                    *m = m.wrapping_add(bump);
                }
                None => {
                    table.insert(id, bump);
                    map.insert(id, bump);
                }
            }
            prop_assert_eq!(table.get(id), map.get(&id));
        }
    }

    /// A sliding window of in-flight ids (the network-model usage
    /// pattern: ids only grow, old entries retire) keeps `len` bounded
    /// by the window and leaves exactly the trailing window live.
    #[test]
    fn sliding_window_of_inflight_ids(window in 1u64..16, total in 16u64..256) {
        let mut table: MsgTable<u64> = MsgTable::new();
        let mut peak = 0;
        for id in 0..total {
            table.insert(id, id * 3);
            peak = peak.max(table.len());
            if id >= window {
                table.remove(id - window);
            }
        }
        prop_assert_eq!(peak, window as usize + 1);
        let live: Vec<u64> = table.iter().map(|(id, _)| id).collect();
        let want: Vec<u64> = (total - window..total).collect();
        prop_assert_eq!(live, want);
    }
}
