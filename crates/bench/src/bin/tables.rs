//! Regenerate every table/figure of the evaluation.
//!
//! ```text
//! tables                    # all experiments, quick scale
//! tables --full             # paper scale (minutes)
//! tables --exp e3 e7       # a subset
//! tables --csv              # machine-readable tables as well
//! tables --json             # run manifest JSON on stdout
//! tables --obs-dir out/     # write trace.json + manifest.json to out/
//! SCTM_OBS=1 tables         # enable tracing without flags
//! ```
//!
//! With tracing enabled (any of `--json`, `--obs-dir`, `SCTM_OBS`),
//! every experiment runs under a `bench` span, sweep jobs and
//! self-correction iterations are traced, and the run ends with a
//! machine-readable manifest: config, per-phase wall times, metric
//! snapshots from every network touched, and per-iteration convergence
//! telemetry. `out/trace.json` loads directly in <https://ui.perfetto.dev>.

use sctm_bench::{num_threads, run_experiment, Scale, EXPERIMENT_IDS};
use sctm_obs as obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let obs_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--obs-dir")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.into());
    let wanted: Vec<String> = {
        let mut w = Vec::new();
        let mut take = false;
        for a in &args {
            if a == "--exp" {
                take = true;
            } else if a.starts_with("--") {
                take = false;
            } else if take {
                w.push(a.to_lowercase());
            }
        }
        w
    };
    obs::init_from_env();
    if json || obs_dir.is_some() {
        obs::set_enabled(true);
    }
    let scale = if full { Scale::Full } else { Scale::Quick };
    eprintln!(
        "# SCTM evaluation — scale: {scale:?} ({} cores flagship)",
        scale.side() * scale.side()
    );
    let t0 = std::time::Instant::now();
    let mut phases: Vec<(&'static str, f64)> = Vec::new();
    for id in EXPERIMENT_IDS {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let te = std::time::Instant::now();
        let table = {
            let _span = obs::span("bench", id);
            run_experiment(id, scale).unwrap()
        };
        // With --json, stdout is reserved for the manifest (pipeable);
        // human-readable tables move to stderr.
        if json {
            eprintln!("{}", table.render());
        } else {
            println!("{}", table.render());
        }
        if csv {
            println!("# CSV {id}\n{}", table.to_csv());
        }
        phases.push((id, te.elapsed().as_secs_f64() * 1e3));
    }
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("# total wall time: {:.1}s", total_ms / 1e3);

    if !obs::enabled() {
        return;
    }
    let mut manifest = obs::Manifest::new();
    manifest.config("scale", format!("{scale:?}").to_lowercase());
    manifest.config("threads", num_threads());
    manifest.config(
        "experiments",
        phases
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>()
            .join(","),
    );
    for &(id, wall_ms) in &phases {
        manifest.phase(id, wall_ms);
    }
    manifest.phase("total", total_ms);
    manifest.metrics = obs::global_snapshot();
    manifest.iterations = obs::iterations_snapshot();
    let manifest_json = manifest.to_json();
    if json {
        println!("{manifest_json}");
    }
    if let Some(dir) = &obs_dir {
        std::fs::create_dir_all(dir).expect("create --obs-dir");
        let trace = obs::chrome_trace_json(&obs::drain());
        std::fs::write(dir.join("trace.json"), trace).expect("write trace.json");
        std::fs::write(dir.join("manifest.json"), &manifest_json).expect("write manifest.json");
        eprintln!(
            "# obs: wrote {0}/trace.json and {0}/manifest.json — open trace.json at https://ui.perfetto.dev",
            dir.display()
        );
    }
}
