//! Run reports and accuracy metrics.
//!
//! The paper's evaluation compares *aggregate* quantities (execution
//! time, average packet latency, simulation wall time) between the
//! trace-model estimate and the execution-driven reference, because a
//! replay and a re-execution do not share per-message identity. These
//! types carry exactly those aggregates.

use sctm_engine::stats::rel_err_pct;
use sctm_engine::time::SimTime;
use sctm_obs::ConvergenceVerdict;
use std::time::Duration;

/// Aggregate outcome of one simulation run (any mode).
#[derive(Clone, Debug)]
pub struct RunReport {
    pub mode: &'static str,
    pub network: &'static str,
    pub workload: &'static str,
    /// Estimated (trace modes) or actual (execution-driven) workload
    /// execution time.
    pub exec_time: SimTime,
    pub mean_lat_ctrl_ns: f64,
    pub mean_lat_data_ns: f64,
    pub messages: u64,
    /// Host wall-clock cost of producing this result (capture included
    /// for trace modes when measured end to end).
    pub wall: Duration,
    /// Per-iteration convergence stats (self-correction mode only).
    pub iterations: Option<Vec<IterStats>>,
    /// Typed convergence verdict (self-correction mode only). Always
    /// computed — it rides on arithmetic the loop already does — so it
    /// is identical whether or not observability is recording.
    pub verdict: Option<ConvergenceVerdict>,
}

/// One iteration of the outer self-correction loop (capture on the
/// corrected analytic model → self-correcting replay on the target →
/// feed corrections back).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterStats {
    pub iteration: usize,
    /// Execution-time estimate after this iteration's replay.
    pub est_exec_time: SimTime,
    /// |estimate − previous estimate| (convergence measure; iteration 1
    /// measures against the uncorrected capture's execution time).
    pub drift: SimTime,
    /// (src,dst) pairs whose correction factor was updated.
    pub corrections: usize,
    /// Message-weighted mean relative movement the correction factors
    /// took this iteration, measured after damping and quantisation
    /// (drives the factor-ε early exit).
    pub factor_move: f64,
    /// Messages in this iteration's trace (re-captures can change it).
    pub messages: u64,
}

impl RunReport {
    /// Simulation speed: simulated nanoseconds per host millisecond.
    pub fn sim_speed(&self) -> f64 {
        let wall_ms = self.wall.as_secs_f64() * 1e3;
        if wall_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.exec_time.as_ns_f64() / wall_ms
    }
}

/// Error of an estimate against an execution-driven reference.
#[derive(Clone, Copy, Debug)]
pub struct Accuracy {
    pub exec_time_err_pct: f64,
    pub ctrl_lat_err_pct: f64,
    pub data_lat_err_pct: f64,
    /// Estimate wall time / reference wall time (< 1 means faster).
    pub wall_ratio: f64,
}

/// Compare an estimated run against the execution-driven reference.
pub fn accuracy(estimate: &RunReport, reference: &RunReport) -> Accuracy {
    Accuracy {
        exec_time_err_pct: rel_err_pct(
            estimate.exec_time.as_ps() as f64,
            reference.exec_time.as_ps() as f64,
        ),
        ctrl_lat_err_pct: rel_err_pct(estimate.mean_lat_ctrl_ns, reference.mean_lat_ctrl_ns),
        data_lat_err_pct: rel_err_pct(estimate.mean_lat_data_ns, reference.mean_lat_data_ns),
        wall_ratio: estimate.wall.as_secs_f64() / reference.wall.as_secs_f64().max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(exec_ns: u64, ctrl: f64, data: f64, wall_ms: u64) -> RunReport {
        RunReport {
            mode: "test",
            network: "emesh",
            workload: "fft",
            exec_time: SimTime::from_ns(exec_ns),
            mean_lat_ctrl_ns: ctrl,
            mean_lat_data_ns: data,
            messages: 100,
            wall: Duration::from_millis(wall_ms),
            iterations: None,
            verdict: None,
        }
    }

    #[test]
    fn accuracy_math() {
        let reference = report(1000, 20.0, 40.0, 100);
        let estimate = report(1100, 22.0, 30.0, 25);
        let a = accuracy(&estimate, &reference);
        assert!((a.exec_time_err_pct - 10.0).abs() < 1e-9);
        assert!((a.ctrl_lat_err_pct - 10.0).abs() < 1e-9);
        assert!((a.data_lat_err_pct - 25.0).abs() < 1e-9);
        assert!((a.wall_ratio - 0.25).abs() < 1e-9);
    }

    #[test]
    fn perfect_estimate_is_zero_error() {
        let r = report(1000, 20.0, 40.0, 100);
        let a = accuracy(&r, &r);
        assert_eq!(a.exec_time_err_pct, 0.0);
        assert_eq!(a.ctrl_lat_err_pct, 0.0);
        assert_eq!(a.data_lat_err_pct, 0.0);
    }

    #[test]
    fn sim_speed() {
        let r = report(2_000_000, 0.0, 0.0, 200); // 2 ms simulated in 200 ms
        assert!((r.sim_speed() - 10_000.0).abs() < 1e-6);
    }
}
