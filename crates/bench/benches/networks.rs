//! Network-simulator throughput: messages simulated per second on each
//! interconnect under identical random traffic (the cost behind E6's
//! curves and the "detailed network" term of every simulation mode).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sctm_bench::bench_network;
use sctm_core::NetworkKind;
use sctm_engine::net::{Message, MsgClass, MsgId, NodeId};
use sctm_engine::rng::StreamRng;
use sctm_engine::time::SimTime;

fn traffic(n: usize, count: u64, seed: u64) -> Vec<(SimTime, Message)> {
    let mut rng = StreamRng::new(seed);
    (0..count)
        .map(|i| {
            let src = rng.below(n as u64) as u32;
            let mut dst = rng.below(n as u64) as u32;
            if dst == src {
                dst = (dst + 1) % n as u32;
            }
            let data = rng.chance(0.5);
            (
                SimTime::from_ns(rng.below(4_000)),
                Message {
                    id: MsgId(i),
                    src: NodeId(src),
                    dst: NodeId(dst),
                    class: if data {
                        MsgClass::Data
                    } else {
                        MsgClass::Control
                    },
                    bytes: if data { 72 } else { 8 },
                },
            )
        })
        .collect()
}

fn bench_networks(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_drain_2k_msgs");
    let side = 8;
    let msgs = traffic(side * side, 2000, 42);
    for kind in [
        NetworkKind::Analytic,
        NetworkKind::Oxbar,
        NetworkKind::Omesh,
        NetworkKind::Emesh,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut net = bench_network(kind, side);
                    for &(t, m) in &msgs {
                        net.inject(t, m);
                    }
                    let mut out = Vec::with_capacity(msgs.len());
                    net.drain(&mut out);
                    assert_eq!(out.len(), msgs.len());
                    black_box(out.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_networks
}
criterion_main!(benches);
