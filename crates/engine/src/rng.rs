//! Deterministic, stream-split randomness.
//!
//! Every stochastic decision in the workspace (traffic injection, address
//! randomisation, adaptive-routing tiebreaks, ...) draws from a
//! [`StreamRng`]. A run is configured with one master `u64` seed; each
//! component derives its own *named stream* with [`StreamRng::stream`],
//! so adding a new consumer of randomness in one component cannot perturb
//! the sequence seen by any other — the property that keeps A/B
//! comparisons between simulator modes honest.
//!
//! The generator is xoshiro256++ (public-domain constants), seeded
//! through SplitMix64. We carry our own 40-line implementation with no
//! external dependency: the stream derivation is part of the simulator's
//! determinism contract and must never shift under a crate version bump.

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; used to hash stream names into the seed.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// xoshiro256++ PRNG with named-stream derivation.
#[derive(Debug, Clone)]
pub struct StreamRng {
    s: [u64; 4],
    master_seed: u64,
}

impl StreamRng {
    /// Root generator for a run.
    pub fn new(master_seed: u64) -> Self {
        Self::seeded(master_seed, master_seed)
    }

    fn seeded(state_seed: u64, master_seed: u64) -> Self {
        let mut sm = state_seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StreamRng { s, master_seed }
    }

    /// Derive an independent generator for `(name, index)`.
    ///
    /// Derivation depends only on the master seed and the identifiers —
    /// not on how many values the parent has produced — so components can
    /// be created in any order.
    pub fn stream(&self, name: &str, index: u64) -> StreamRng {
        let h = fnv1a(name.as_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        StreamRng::seeded(self.master_seed ^ h, self.master_seed)
    }

    /// The master seed this generator tree was built from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`. 53-bit precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's method (no modulo bias).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Geometric inter-arrival gap for a Bernoulli-per-cycle process of
    /// rate `p` (expected value `1/p`). Returns at least 1.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 1;
        }
        if p <= 0.0 {
            return u64::MAX;
        }
        let u = self.f64().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()).ceil();
        (g as u64).max(1)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Next raw 64-bit output of the generator.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }

    /// Next raw 32-bit output (high half of the 64-bit state).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Fill a byte slice with generator output (little-endian words).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StreamRng::new(7);
        let mut b = StreamRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StreamRng::new(7);
        let mut b = StreamRng::new(8);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn streams_are_independent_of_parent_consumption() {
        let mut root1 = StreamRng::new(99);
        let root2 = StreamRng::new(99);
        // Consume from root1 before deriving.
        for _ in 0..17 {
            root1.next_u64();
        }
        let mut s1 = root1.stream("injector", 3);
        let mut s2 = root2.stream("injector", 3);
        for _ in 0..100 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn named_streams_differ() {
        let root = StreamRng::new(1);
        let mut a = root.stream("alpha", 0);
        let mut b = root.stream("beta", 0);
        let mut c = root.stream("alpha", 1);
        let va: Vec<_> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<_> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<_> = (0..32).map(|_| c.next_u64()).collect();
        assert_ne!(va, vb);
        assert_ne!(va, vc);
        assert_ne!(vb, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StreamRng::new(2);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = StreamRng::new(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = StreamRng::new(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn geometric_mean_matches_rate() {
        let mut r = StreamRng::new(5);
        let p = 0.1;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn geometric_edge_rates() {
        let mut r = StreamRng::new(6);
        assert_eq!(r.geometric(1.0), 1);
        assert_eq!(r.geometric(1.5), 1);
        assert_eq!(r.geometric(0.0), u64::MAX);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StreamRng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = StreamRng::new(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = StreamRng::new(10);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.1)));
    }
}
