//! Packets, flits, and message ↔ packet conversion.
//!
//! Every [`Message`] maps to exactly one wormhole packet. The head flit
//! carries routing state and up to [`HEAD_PAYLOAD_BYTES`] of payload
//! (enough for a bare coherence control message, which therefore fits in
//! a single head-tail flit); remaining payload is segmented into
//! [`PacketizeConfig::flit_bytes`]-sized body flits, the last marked
//! Tail.

use sctm_engine::net::{Message, MsgId, NodeId};
use sctm_engine::time::SimTime;

/// Payload bytes that ride inside the head flit alongside the header.
pub const HEAD_PAYLOAD_BYTES: u32 = 8;

/// Position of a flit within its packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlitKind {
    /// Head of a multi-flit packet.
    Head,
    /// Interior flit.
    Body,
    /// Last flit of a multi-flit packet.
    Tail,
    /// Entire packet in one flit.
    HeadTail,
}

impl FlitKind {
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control unit.
#[derive(Clone, Copy, Debug)]
pub struct Flit {
    pub kind: FlitKind,
    /// Packet (== message) this flit belongs to.
    pub pkt: MsgId,
    pub dst: NodeId,
    /// Source node (used by source-aware routing like odd-even).
    pub src_hint: NodeId,
    /// Virtual network (0 = control, 1 = data).
    pub vnet: u8,
    /// Set once the flit has crossed a torus dateline in any dimension.
    pub dateline: bool,
    /// Cycle at which this flit may next compete for the switch
    /// (models link traversal + router pipeline depth).
    pub ready_cycle: u64,
}

/// Packetisation parameters.
#[derive(Clone, Copy, Debug)]
pub struct PacketizeConfig {
    /// Payload bytes per body flit (link width × phit count).
    pub flit_bytes: u32,
}

impl Default for PacketizeConfig {
    fn default() -> Self {
        PacketizeConfig { flit_bytes: 16 }
    }
}

impl PacketizeConfig {
    /// Number of flits for a message of `bytes` payload.
    pub fn flit_count(&self, bytes: u32) -> usize {
        if bytes <= HEAD_PAYLOAD_BYTES {
            1
        } else {
            1 + ((bytes - HEAD_PAYLOAD_BYTES) as usize).div_ceil(self.flit_bytes as usize)
        }
    }

    /// Build the flit sequence for `msg`.
    pub fn packetize(&self, msg: &Message) -> Vec<Flit> {
        let n = self.flit_count(msg.bytes);
        let vnet = match msg.class {
            sctm_engine::net::MsgClass::Control => 0,
            sctm_engine::net::MsgClass::Data => 1,
        };
        (0..n)
            .map(|i| {
                let kind = match (i, n) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (i, n) if i + 1 == n => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                Flit {
                    kind,
                    pkt: msg.id,
                    dst: msg.dst,
                    src_hint: msg.src,
                    vnet,
                    dateline: false,
                    ready_cycle: 0,
                }
            })
            .collect()
    }
}

/// Per-destination packet reassembly: counts ejected flits and reports
/// completion when the tail arrives.
///
/// A node only ever has a handful of packets in reassembly at once
/// (wormhole switching interleaves few packets per ejection port), so a
/// linear-scan vector beats a hash map here: no hashing on the per-flit
/// path, and removal is a `swap_remove`.
#[derive(Clone, Debug, Default)]
pub struct Reassembly {
    open: Vec<(u64, Message, SimTime, usize)>,
}

impl Reassembly {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a packet at injection time so its metadata survives the
    /// flits (flits carry only ids).
    pub fn begin(&mut self, msg: Message, injected_at: SimTime) {
        debug_assert!(
            !self.open.iter().any(|e| e.0 == msg.id.0),
            "duplicate packet id {:?}",
            msg.id
        );
        self.open.push((msg.id.0, msg, injected_at, 0));
    }

    /// Record one ejected flit; on the tail flit, returns the completed
    /// message and its injection time.
    pub fn eject(&mut self, flit: &Flit) -> Option<(Message, SimTime)> {
        let pos = self
            .open
            .iter()
            .position(|e| e.0 == flit.pkt.0)
            .expect("ejected flit for unknown packet");
        self.open[pos].3 += 1;
        if flit.kind.is_tail() {
            let (_, msg, t, _) = self.open.swap_remove(pos);
            Some((msg, t))
        } else {
            None
        }
    }

    /// Packets not yet fully ejected.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctm_engine::net::MsgClass;

    fn msg(bytes: u32) -> Message {
        Message {
            id: MsgId(7),
            src: NodeId(0),
            dst: NodeId(3),
            class: if bytes > 16 {
                MsgClass::Data
            } else {
                MsgClass::Control
            },
            bytes,
        }
    }

    #[test]
    fn control_fits_in_one_flit() {
        let c = PacketizeConfig::default();
        assert_eq!(c.flit_count(0), 1);
        assert_eq!(c.flit_count(8), 1);
        let flits = c.packetize(&msg(8));
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
    }

    #[test]
    fn cacheline_is_five_flits() {
        let c = PacketizeConfig::default();
        // 64B line: 8B in head + 56B / 16B = 4 (3.5 rounded up) body flits
        assert_eq!(c.flit_count(64), 5);
        let flits = c.packetize(&msg(64));
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert!(flits[1..4].iter().all(|f| f.kind == FlitKind::Body));
        assert_eq!(flits[4].kind, FlitKind::Tail);
    }

    #[test]
    fn boundary_sizes() {
        let c = PacketizeConfig::default();
        assert_eq!(c.flit_count(9), 2); // head + 1 body
        assert_eq!(c.flit_count(24), 2); // 8 + 16 exactly
        assert_eq!(c.flit_count(25), 3);
    }

    #[test]
    fn reassembly_completes_on_tail() {
        let c = PacketizeConfig::default();
        let m = msg(64);
        let flits = c.packetize(&m);
        let mut r = Reassembly::new();
        r.begin(m, SimTime::from_ps(5));
        for f in &flits[..4] {
            assert!(r.eject(f).is_none());
        }
        let (done, t) = r.eject(&flits[4]).unwrap();
        assert_eq!(done.id, m.id);
        assert_eq!(t, SimTime::from_ps(5));
        assert_eq!(r.open_count(), 0);
    }

    #[test]
    fn reassembly_tracks_multiple_packets() {
        let c = PacketizeConfig::default();
        let mut r = Reassembly::new();
        let mut m1 = msg(8);
        m1.id = MsgId(1);
        let mut m2 = msg(8);
        m2.id = MsgId(2);
        r.begin(m1, SimTime::ZERO);
        r.begin(m2, SimTime::ZERO);
        assert_eq!(r.open_count(), 2);
        let f2 = &c.packetize(&m2)[0];
        assert_eq!(r.eject(f2).unwrap().0.id, MsgId(2));
        assert_eq!(r.open_count(), 1);
    }
}
