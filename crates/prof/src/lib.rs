//! # sctm-prof — causal profiling for SCTM runs
//!
//! Three pillars on top of the observability layer:
//!
//! 1. **Blame analysis** ([`analyze`]): aggregate per-message
//!    [`MsgLifecycle`] records (harvested from any network model with
//!    lifecycle capture on) into per-class component totals, and walk
//!    the captured dependency DAG to extract the sim-time **critical
//!    path** — the chain of messages and dependency gaps that bounds
//!    execution time — with per-component blame along it, exportable as
//!    a folded-stack flamegraph.
//! 2. **Bench JSON** ([`benchjson`]): the schema-versioned format the
//!    vendored criterion shim and the `tables` binary emit with
//!    `--bench-json`, plus merge/compare operations.
//! 3. **`benchcmp`** (binary): diff two bench JSON files and exit
//!    non-zero past a regression threshold — the CI perf gate.
//!
//! Everything is hand-serialised/parsed ([`json`]): the workspace
//! builds offline with no registry access.
//!
//! [`MsgLifecycle`]: sctm_engine::net::MsgLifecycle
//! [`analyze`]: analyze::analyze

pub mod analyze;
pub mod benchjson;
pub mod json;

pub use analyze::{analyze, critical_path, BlameReport, ClassBlame, CriticalPath};
pub use benchjson::{compare, BenchFile, BenchRecord, Comparison, Machine, SCHEMA};
