//! `sctmtop` — a live one-screen monitor for a running `sctmd`.
//!
//! ```text
//! sctmtop 127.0.0.1:4710                  # refresh every second
//! sctmtop 127.0.0.1:4710 --interval-ms 250
//! sctmtop 127.0.0.1:4710 --once           # one frame, no screen clear
//! sctmtop 127.0.0.1:4710 --frames 10      # exit after 10 frames
//! sctmtop 127.0.0.1:4710 --json           # one raw stats line, for scripts
//! ```
//!
//! Polls the daemon's `stats` verb over one persistent TCP connection
//! and renders throughput (rates come from successive snapshots — the
//! protocol itself only carries monotone counters), cache economics,
//! queue/backpressure state, and per-phase latency quantiles. Made for
//! watching a §P5-style saturation sweep approach its cliff.

use sctm_obs::ConvergenceVerdict;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!("usage: sctmtop ADDR [--interval-ms N] [--frames N] [--once] [--json]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("sctmtop: {msg}");
    std::process::exit(1);
}

/// Pull `"<field>": <number>` out of the flat JSON object that follows
/// `"<name>"` in `doc`. The manifest renders metric objects flat
/// (`{"kind": "counter", "value": 3}`), so brace matching is a plain
/// scan to the first `}`.
fn metric_num(doc: &str, name: &str, field: &str) -> Option<f64> {
    let nkey = format!("\"{name}\"");
    let rest = &doc[doc.find(&nkey)? + nkey.len()..];
    let obj_start = rest.find('{')?;
    let obj_end = rest[obj_start..].find('}')? + obj_start;
    let obj = &rest[obj_start..=obj_end];
    let fkey = format!("\"{field}\":");
    let tail = obj[obj.find(&fkey)? + fkey.len()..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn counter(doc: &str, name: &str) -> u64 {
    metric_num(doc, name, "value").unwrap_or(0.0) as u64
}

#[derive(Clone, Copy, Default)]
struct Frame {
    at: Option<Instant>,
    accepted: u64,
    completed: u64,
    errors: u64,
    rejected: u64,
    timeouts: u64,
    hits: u64,
    misses: u64,
    steals: u64,
    tasks: u64,
}

fn rate(prev: u64, cur: u64, dt: f64) -> f64 {
    if dt <= 0.0 {
        return 0.0;
    }
    cur.saturating_sub(prev) as f64 / dt
}

fn mib(bytes: f64) -> f64 {
    bytes / (1024.0 * 1024.0)
}

fn quantiles(doc: &str, name: &str) -> String {
    let q = |f: &str| {
        metric_num(doc, name, f)
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".into())
    };
    format!(
        "p50 {:>8}  p95 {:>8}  p99 {:>8}",
        q("p50"),
        q("p95"),
        q("p99")
    )
}

fn render(doc: &str, prev: &Frame, addr: &str, frame_no: u64, clear: bool) -> Frame {
    let now = Instant::now();
    let cur = Frame {
        at: Some(now),
        accepted: counter(doc, "srv.accepted"),
        completed: counter(doc, "srv.completed"),
        errors: counter(doc, "srv.errors"),
        rejected: counter(doc, "srv.rejected"),
        timeouts: counter(doc, "srv.timeouts"),
        hits: counter(doc, "srv.cache.hits"),
        misses: counter(doc, "srv.cache.misses"),
        steals: counter(doc, "srv.sched.steals"),
        tasks: counter(doc, "srv.sched.tasks"),
    };
    let dt = prev
        .at
        .map(|t| now.duration_since(t).as_secs_f64())
        .unwrap_or(0.0);
    let lookups = cur.hits + cur.misses;
    let hit_pct = if lookups > 0 {
        100.0 * cur.hits as f64 / lookups as f64
    } else {
        0.0
    };
    let g = |name: &str| metric_num(doc, name, "value").unwrap_or(0.0);

    let mut out = String::new();
    if clear {
        out.push_str("\x1b[2J\x1b[H"); // clear screen, home cursor
    }
    let version = doc
        .split_once("\"version\":")
        .and_then(|(_, t)| t.split(',').next())
        .unwrap_or("?")
        .trim();
    out.push_str(&format!(
        "sctmtop — {addr}   frame {frame_no}   version {version}\n\n"
    ));
    out.push_str(&format!(
        "requests   accepted {:>8} ({:>7.1}/s)   completed {:>8} ({:>7.1}/s)\n",
        cur.accepted,
        rate(prev.accepted, cur.accepted, dt),
        cur.completed,
        rate(prev.completed, cur.completed, dt),
    ));
    out.push_str(&format!(
        "           errors {:>6}   busy {:>6}   timeouts {:>6}   budget-exhausted {:>4}\n\n",
        cur.errors,
        cur.rejected,
        cur.timeouts,
        counter(doc, "srv.budget_exhausted"),
    ));
    out.push_str(&format!(
        "cache      hit {:>5.1}%   hits {:>8}   misses {:>6}   waits {:>5}   bypass {:>5}\n",
        hit_pct,
        cur.hits,
        cur.misses,
        counter(doc, "srv.cache.single_flight_waits"),
        counter(doc, "srv.cache.bypass"),
    ));
    out.push_str(&format!(
        "           entries {:>5}   {:>9.1} MiB   {:>7.1} KiB/entry   evictions {:>5}\n\n",
        g("srv.cache.entries") as u64,
        mib(g("srv.cache.bytes")),
        g("srv.cache.bytes_per_entry") / 1024.0,
        counter(doc, "srv.cache.evictions"),
    ));
    out.push_str(&format!(
        "queue      depth {:>4}   peak {:>4}   in-flight {:>4}\n",
        g("srv.queue.depth") as u64,
        g("srv.queue.peak") as u64,
        g("srv.in_flight") as u64,
    ));
    out.push_str(&format!(
        "sched      workers {:>3}   busy {:>3}   tasks {:>8} ({:>7.1}/s)   steals {:>6} ({:>6.1}/s)\n",
        g("srv.sched.workers") as u64,
        g("srv.sched.busy") as u64,
        cur.tasks,
        rate(prev.tasks, cur.tasks, dt),
        cur.steals,
        rate(prev.steals, cur.steals, dt),
    ));
    out.push_str(&format!(
        "           stage q   probe {:>4}   capture {:>4}   replay {:>4}   render {:>4}\n",
        g("srv.sched.queue.probe") as u64,
        g("srv.sched.queue.capture") as u64,
        g("srv.sched.queue.replay") as u64,
        g("srv.sched.queue.render") as u64,
    ));
    // Shard rows only matter in multi-instance mode; a 0-peer ring
    // means the daemon runs unsharded, so keep the screen quiet then.
    let shard_peers = g("srv.shard.peers") as u64;
    if shard_peers > 0 {
        out.push_str(&format!(
            "shard      peers {:>3}   owned {:>6}   forwarded {:>6}   served {:>6}   fwd-errors {:>4}\n",
            shard_peers,
            counter(doc, "srv.shard.owned"),
            counter(doc, "srv.shard.forwarded"),
            counter(doc, "srv.shard.fwd_served"),
            counter(doc, "srv.shard.fwd_errors"),
        ));
        out.push_str(&format!(
            "           fwd frames   sctf {:>6}   csv {:>6}\n",
            counter(doc, "srv.shard.fwd_sctf"),
            counter(doc, "srv.shard.fwd_csv"),
        ));
    }
    out.push('\n');
    let cv = |v: ConvergenceVerdict| counter(doc, &format!("srv.conv.runs.{}", v.label()));
    let converged: u64 = ConvergenceVerdict::ALL
        .iter()
        .filter(|v| v.is_converged())
        .map(|v| cv(*v))
        .sum();
    out.push_str(&format!(
        "conv       converged {:>5}   oscillating {:>4}   stalled {:>4}   diverging {:>4}   exhausted {:>4}   iters p50 {:>3}\n\n",
        converged,
        cv(ConvergenceVerdict::Oscillating),
        cv(ConvergenceVerdict::Stalled),
        cv(ConvergenceVerdict::Diverging),
        cv(ConvergenceVerdict::Exhausted),
        metric_num(doc, "srv.conv.iterations", "p50")
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".into()),
    ));
    out.push_str("latency µs\n");
    for (label, key) in [
        ("queue   ", "srv.lat.queue_us"),
        ("probe   ", "srv.lat.cache_probe_us"),
        ("execute ", "srv.lat.execute_us"),
        ("respond ", "srv.lat.respond_us"),
        ("total   ", "srv.lat.total_us"),
    ] {
        out.push_str(&format!("  {label} {}\n", quantiles(doc, key)));
    }
    print!("{out}");
    let _ = std::io::stdout().flush();
    cur
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut interval = Duration::from_millis(1000);
    let mut frames: Option<u64> = None;
    let mut once = false;
    let mut json = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--interval-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                interval = Duration::from_millis(ms.max(50));
            }
            "--frames" => {
                i += 1;
                frames = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--once" => once = true,
            "--json" => json = true,
            a if addr.is_none() && !a.starts_with("--") => addr = Some(a.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let addr = addr.unwrap_or_else(|| usage());
    if once || json {
        frames = Some(1);
    }

    let stream =
        TcpStream::connect(&addr).unwrap_or_else(|e| fail(&format!("cannot connect {addr}: {e}")));
    let mut writer = stream
        .try_clone()
        .unwrap_or_else(|e| fail(&format!("clone stream: {e}")));
    let mut reader = BufReader::new(stream);

    let mut prev = Frame::default();
    let mut n = 0u64;
    loop {
        if writer
            .write_all(b"stats\n")
            .and_then(|()| writer.flush())
            .is_err()
        {
            fail("daemon closed the connection");
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => fail("daemon closed the connection"),
            Ok(_) => {}
            Err(e) => fail(&format!("read: {e}")),
        }
        // A stats response is one JSON object carrying a `stats`
        // manifest; anything else (a proxy error page, a truncated
        // line, a different protocol) must not reach the scrapers.
        let body = line.trim();
        if !(body.starts_with('{') && body.ends_with('}') && body.contains("\"stats\"")) {
            let head: String = body.chars().take(80).collect();
            fail(&format!("malformed stats response from {addr}: {head:?}"));
        }
        n += 1;
        if json {
            println!("{body}");
            break;
        }
        prev = render(&line, &prev, &addr, n, !once);
        if let Some(max) = frames {
            if n >= max {
                break;
            }
        }
        std::thread::sleep(interval);
    }
}
