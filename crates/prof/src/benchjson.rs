//! The schema-versioned bench-result format (`sctm-bench-v1`) and its
//! merge/compare operations.
//!
//! Emitters: the vendored criterion shim (every bench binary accepts
//! `--bench-json PATH`) and the `tables` binary (per-experiment wall
//! times). Consumer: the `benchcmp` binary, which merges per-emitter
//! files into one `BENCH_PR3.json` and diffs two such files as the CI
//! perf gate.
//!
//! Medians (not means) are compared: sample medians are robust to the
//! one-off scheduling outliers shared CI runners produce. The machine
//! fingerprint travels with the numbers so a comparison across
//! different hardware can be flagged instead of trusted.

use crate::json::{escape, parse, Json};
use std::fmt::Write as _;

/// Schema identifier; bump on any incompatible change.
pub const SCHEMA: &str = "sctm-bench-v1";

/// Where the numbers were measured.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Machine {
    pub os: String,
    pub arch: String,
    pub threads: u64,
}

impl Machine {
    /// Fingerprint of the machine running right now.
    pub fn current() -> Machine {
        Machine {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        }
    }
}

/// One benchmark's order statistics, in nanoseconds per iteration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchRecord {
    pub id: String,
    pub samples: u64,
    pub min_ns: f64,
    pub p25_ns: f64,
    pub median_ns: f64,
    pub p75_ns: f64,
    pub max_ns: f64,
}

/// A complete bench-JSON document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchFile {
    pub schema: String,
    pub machine: Machine,
    pub benches: Vec<BenchRecord>,
}

impl BenchFile {
    pub fn new() -> Self {
        BenchFile {
            schema: SCHEMA.to_string(),
            machine: Machine::current(),
            benches: Vec::new(),
        }
    }

    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", escape(&self.schema));
        let _ = writeln!(
            out,
            "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"threads\": {}}},",
            escape(&self.machine.os),
            escape(&self.machine.arch),
            self.machine.threads
        );
        out.push_str("  \"benches\": [");
        for (i, b) in self.benches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"id\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"p25_ns\": {}, \"median_ns\": {}, \"p75_ns\": {}, \"max_ns\": {}}}",
                escape(&b.id),
                b.samples,
                num(b.min_ns),
                num(b.p25_ns),
                num(b.median_ns),
                num(b.p75_ns),
                num(b.max_ns),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    pub fn from_json(s: &str) -> Result<BenchFile, String> {
        let v = parse(s)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (want '{SCHEMA}')"));
        }
        let m = v.get("machine").ok_or("missing machine")?;
        let machine = Machine {
            os: m.get("os").and_then(Json::as_str).unwrap_or("").to_string(),
            arch: m
                .get("arch")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            threads: m.get("threads").and_then(Json::as_u64).unwrap_or(0),
        };
        let mut benches = Vec::new();
        for b in v
            .get("benches")
            .and_then(Json::as_arr)
            .ok_or("missing benches array")?
        {
            let field = |k: &str| {
                b.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("bench missing numeric '{k}'"))
            };
            benches.push(BenchRecord {
                id: b
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("bench missing id")?
                    .to_string(),
                samples: b.get("samples").and_then(Json::as_u64).unwrap_or(0),
                min_ns: field("min_ns")?,
                p25_ns: field("p25_ns")?,
                median_ns: field("median_ns")?,
                p75_ns: field("p75_ns")?,
                max_ns: field("max_ns")?,
            });
        }
        Ok(BenchFile {
            schema: schema.to_string(),
            machine,
            benches,
        })
    }

    /// Concatenate several files (e.g. one per bench binary) into one.
    /// The machine fingerprint comes from the first file; bench ids are
    /// kept sorted and must be unique across inputs.
    pub fn merge(files: Vec<BenchFile>) -> Result<BenchFile, String> {
        let mut out = BenchFile::new();
        if let Some(first) = files.first() {
            out.machine = first.machine.clone();
        }
        for f in files {
            out.benches.extend(f.benches);
        }
        out.benches.sort_by(|a, b| a.id.cmp(&b.id));
        for w in out.benches.windows(2) {
            if w[0].id == w[1].id {
                return Err(format!("duplicate bench id '{}' across inputs", w[0].id));
            }
        }
        Ok(out)
    }
}

fn num(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One benchmark whose median moved past the threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    pub id: String,
    pub old_ns: f64,
    pub new_ns: f64,
    /// `new / old`; > 1 is slower.
    pub ratio: f64,
}

/// Result of comparing two bench files.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Comparison {
    /// Benchmarks present in both files.
    pub common: usize,
    /// Ids only in the new file.
    pub added: Vec<String>,
    /// Ids only in the old file.
    pub removed: Vec<String>,
    /// Median slowdowns beyond the threshold.
    pub regressions: Vec<Delta>,
    /// Median speedups beyond the threshold.
    pub improvements: Vec<Delta>,
    /// The two files were measured on different machines.
    pub machine_mismatch: bool,
    /// Geometric mean of `new/old` median ratios across *all* common
    /// benches (not just the ones past the threshold): the one-number
    /// answer to "did this change make the suite faster overall".
    /// `None` when no common bench has a positive old median.
    pub geo_mean_ratio: Option<f64>,
}

/// Compare medians with a relative `threshold` (0.10 = 10%). Benchmarks
/// appearing on only one side are reported but never count as
/// regressions — renames must not break CI silently *or* loudly.
pub fn compare(old: &BenchFile, new: &BenchFile, threshold: f64) -> Comparison {
    let mut cmp = Comparison {
        machine_mismatch: old.machine != new.machine,
        ..Comparison::default()
    };
    let (mut ln_sum, mut ln_n) = (0.0f64, 0u32);
    for n in &new.benches {
        match old.benches.iter().find(|o| o.id == n.id) {
            None => cmp.added.push(n.id.clone()),
            Some(o) => {
                cmp.common += 1;
                if o.median_ns <= 0.0 {
                    continue;
                }
                let ratio = n.median_ns / o.median_ns;
                if ratio > 0.0 && ratio.is_finite() {
                    ln_sum += ratio.ln();
                    ln_n += 1;
                }
                let d = Delta {
                    id: n.id.clone(),
                    old_ns: o.median_ns,
                    new_ns: n.median_ns,
                    ratio,
                };
                if ratio > 1.0 + threshold {
                    cmp.regressions.push(d);
                } else if ratio < 1.0 - threshold {
                    cmp.improvements.push(d);
                }
            }
        }
    }
    for o in &old.benches {
        if !new.benches.iter().any(|n| n.id == o.id) {
            cmp.removed.push(o.id.clone());
        }
    }
    cmp.regressions.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    cmp.improvements.sort_by(|a, b| a.ratio.total_cmp(&b.ratio));
    if ln_n > 0 {
        cmp.geo_mean_ratio = Some((ln_sum / ln_n as f64).exp());
    }
    cmp
}

/// Outcome of a within-file median ratio check (`benchcmp ratio`).
#[derive(Clone, Debug, PartialEq)]
pub struct RatioCheck {
    pub num_ns: f64,
    pub den_ns: f64,
    /// `num / den` of the two medians.
    pub ratio: f64,
    pub max: f64,
}

impl RatioCheck {
    pub fn passed(&self) -> bool {
        self.ratio <= self.max
    }
}

/// Gate the ratio of two medians *within one file*: `num_id / den_id`
/// must not exceed `max`. This is how relative-overhead budgets (e.g.
/// "stats polling costs ≤2%") are enforced without a baseline file —
/// both numbers come from the same machine and run, so no fingerprint
/// escape hatch applies.
pub fn ratio_check(
    file: &BenchFile,
    num_id: &str,
    den_id: &str,
    max: f64,
) -> Result<RatioCheck, String> {
    let median = |id: &str| {
        file.benches
            .iter()
            .find(|b| b.id == id)
            .map(|b| b.median_ns)
            .ok_or_else(|| format!("bench id '{id}' not in file"))
    };
    let num_ns = median(num_id)?;
    let den_ns = median(den_id)?;
    if den_ns <= 0.0 {
        return Err(format!(
            "denominator '{den_id}' has non-positive median {den_ns}"
        ));
    }
    Ok(RatioCheck {
        num_ns,
        den_ns,
        ratio: num_ns / den_ns,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, median: f64) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            samples: 10,
            min_ns: median * 0.9,
            p25_ns: median * 0.95,
            median_ns: median,
            p75_ns: median * 1.05,
            max_ns: median * 1.2,
        }
    }

    fn file(benches: Vec<BenchRecord>) -> BenchFile {
        BenchFile {
            schema: SCHEMA.to_string(),
            machine: Machine {
                os: "linux".into(),
                arch: "x86_64".into(),
                threads: 8,
            },
            benches,
        }
    }

    #[test]
    fn roundtrip_through_json() {
        let f = file(vec![rec("a/1", 1234.5), rec("b/2", 1e9)]);
        let back = BenchFile::from_json(&f.to_json()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn self_comparison_reports_zero_regressions() {
        let f = file(vec![rec("a", 100.0), rec("b", 2000.0)]);
        let cmp = compare(&f, &f, 0.10);
        assert_eq!(cmp.common, 2);
        assert!(cmp.regressions.is_empty());
        assert!(cmp.improvements.is_empty());
        assert!(cmp.added.is_empty() && cmp.removed.is_empty());
        assert!(!cmp.machine_mismatch);
    }

    #[test]
    fn regression_and_improvement_detection() {
        let old = file(vec![
            rec("slow", 100.0),
            rec("fast", 100.0),
            rec("same", 100.0),
        ]);
        let new = file(vec![
            rec("slow", 130.0),
            rec("fast", 70.0),
            rec("same", 105.0),
        ]);
        let cmp = compare(&old, &new, 0.10);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].id, "slow");
        assert!((cmp.regressions[0].ratio - 1.3).abs() < 1e-9);
        assert_eq!(cmp.improvements.len(), 1);
        assert_eq!(cmp.improvements[0].id, "fast");
    }

    #[test]
    fn added_and_removed_are_not_regressions() {
        let old = file(vec![rec("gone", 1.0)]);
        let new = file(vec![rec("new", 1.0)]);
        let cmp = compare(&old, &new, 0.1);
        assert_eq!(cmp.added, vec!["new"]);
        assert_eq!(cmp.removed, vec!["gone"]);
        assert!(cmp.regressions.is_empty());
    }

    #[test]
    fn geo_mean_covers_all_common_benches() {
        // 2× slower and 2× faster cancel exactly in the geometric mean;
        // the sub-threshold "same" bench still participates.
        let old = file(vec![rec("a", 100.0), rec("b", 100.0), rec("c", 100.0)]);
        let new = file(vec![rec("a", 200.0), rec("b", 50.0), rec("c", 100.0)]);
        let g = compare(&old, &new, 0.10).geo_mean_ratio.unwrap();
        assert!((g - 1.0).abs() < 1e-12, "geo mean {g}");
        // Uniform 10% slowdown shows up as exactly 1.1.
        let new = file(vec![rec("a", 110.0), rec("b", 110.0), rec("c", 110.0)]);
        let g = compare(&old, &new, 0.50).geo_mean_ratio.unwrap();
        assert!((g - 1.1).abs() < 1e-9, "geo mean {g}");
        // No common benches → no geo mean, and nothing else to report:
        // `benchcmp diff` treats this as a failed (downgradable)
        // comparison rather than a vacuous "no regressions".
        let disjoint = compare(&old, &file(vec![rec("z", 1.0)]), 0.1);
        assert_eq!(disjoint.geo_mean_ratio, None);
        assert_eq!(disjoint.common, 0);
        assert!(disjoint.regressions.is_empty() && disjoint.improvements.is_empty());
        assert_eq!(disjoint.added.len(), 1);
        assert_eq!(disjoint.removed.len(), 3);
    }

    #[test]
    fn machine_mismatch_flagged() {
        let a = file(vec![]);
        let mut b = file(vec![]);
        b.machine.threads = 1;
        assert!(compare(&a, &b, 0.1).machine_mismatch);
    }

    #[test]
    fn merge_concatenates_and_rejects_duplicates() {
        let merged =
            BenchFile::merge(vec![file(vec![rec("b", 1.0)]), file(vec![rec("a", 2.0)])]).unwrap();
        assert_eq!(merged.benches.len(), 2);
        assert_eq!(merged.benches[0].id, "a");
        assert!(
            BenchFile::merge(vec![file(vec![rec("a", 1.0)]), file(vec![rec("a", 2.0)])]).is_err()
        );
    }

    #[test]
    fn ratio_check_gates_within_one_file() {
        let f = file(vec![rec("grp/polled", 102.0), rec("grp/quiet", 100.0)]);
        let ok = ratio_check(&f, "grp/polled", "grp/quiet", 1.02).unwrap();
        assert!(ok.passed(), "ratio {} should pass at 1.02", ok.ratio);
        let bad = ratio_check(&f, "grp/polled", "grp/quiet", 1.01).unwrap();
        assert!(!bad.passed());
        assert!((bad.ratio - 1.02).abs() < 1e-9);
        assert!(ratio_check(&f, "missing", "grp/quiet", 1.0).is_err());
        let zero = file(vec![rec("a", 1.0), rec("b", 0.0)]);
        assert!(ratio_check(&zero, "a", "b", 1.0).is_err());
    }

    #[test]
    fn schema_mismatch_rejected() {
        let doc = file(vec![]).to_json().replace(SCHEMA, "sctm-bench-v999");
        assert!(BenchFile::from_json(&doc).is_err());
    }
}
