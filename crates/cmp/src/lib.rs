//! # sctm-cmp — full-system tiled-CMP simulator
//!
//! The "real workload" half of the paper's co-simulation: in-order cores
//! executing multi-threaded workloads over private L1s, a full-map MESI
//! directory with shared L2 slices, and memory controllers — every
//! coherence hop crossing a pluggable network model. This substitutes
//! for the commercial full-system simulator the original work built on
//! (DESIGN.md §5): the trace model only observes network messages and
//! their causal dependencies, which this substrate produces from real
//! cache and directory state machines.
//!
//! * [`cache`] — set-associative LRU tag stores.
//! * [`protocol`] — coherence message vocabulary, workload API, and the
//!   [`protocol::TraceHook`] capture interface.
//! * [`sim`] — the event-driven simulator itself.
//! * [`par`] — the deterministic epoch-parallel capture runner.

pub mod cache;
pub mod par;
pub mod protocol;
pub mod sim;

pub use cache::{Cache, CacheGeometry, LineAddr, LINE_BYTES};
pub use protocol::{
    DirState, InjectRecord, NullHook, Op, ProtocolMsg, Sharers, TraceHook, Workload,
};
pub use sim::{CmpConfig, CmpResult, CmpSim};
