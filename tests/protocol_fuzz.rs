//! Coherence-protocol fuzzing: random multi-core op streams over a
//! small, highly contended line set must always run to completion (no
//! lost wakeups, no leaked transactions) and pass the end-of-run MESI
//! validation built into `CmpSim::run`, on every interconnect.

use proptest::prelude::*;
use sctm::{NetworkKind, SystemConfig};
use sctm_cmp::protocol::{Op, Workload};
use sctm_cmp::{CmpConfig, CmpSim, NullHook};

/// A fully random workload over a tiny line set (maximum contention).
#[derive(Debug)]
struct FuzzWorkload {
    streams: Vec<Vec<Op>>,
    pos: Vec<usize>,
}

impl Workload for FuzzWorkload {
    fn num_cores(&self) -> usize {
        self.streams.len()
    }
    fn name(&self) -> &'static str {
        "fuzz"
    }
    fn next_op(&mut self, core: usize) -> Op {
        let i = self.pos[core];
        self.pos[core] += 1;
        self.streams[core].get(i).copied().unwrap_or(Op::Halt)
    }
}

/// Strategy: per core, a sequence of ops hammering `lines` shared lines
/// (plus barriers at aligned script positions so they stay global).
fn fuzz_workload(cores: usize, len: usize, lines: u64) -> impl Strategy<Value = FuzzWorkload> {
    let op = prop_oneof![
        3 => (0..lines).prop_map(|l| Op::Load(l * 64)),
        3 => (0..lines).prop_map(|l| Op::Store(l * 64)),
        1 => (1u64..40).prop_map(Op::Compute),
    ];
    let stream = prop::collection::vec(op, len..len + 1);
    prop::collection::vec(stream, cores..cores + 1).prop_map(move |mut streams| {
        // Insert two global barriers at fixed positions.
        for s in streams.iter_mut() {
            s.insert(len / 3, Op::Barrier(0));
            s.insert(2 * len / 3, Op::Barrier(1));
        }
        FuzzWorkload {
            pos: vec![0; streams.len()],
            streams,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// 4 cores, 8 shared lines: every interleaving of loads and stores
    /// must terminate with a coherent directory.
    #[test]
    fn random_contended_streams_terminate_coherently(
        w in fuzz_workload(4, 80, 8),
        net_choice in 0usize..3,
    ) {
        let kind = [NetworkKind::Emesh, NetworkKind::Omesh, NetworkKind::Oxbar][net_choice];
        let cfg = CmpConfig::tiled(2);
        let net = SystemConfig::make_network_kind(2, kind);
        let mut sim = CmpSim::new(cfg, net, Box::new(w));
        // `run` asserts: all cores halted, no in-flight messages, no
        // leaked directory transactions, MESI invariants hold.
        let r = sim.run(&mut NullHook);
        prop_assert!(r.exec_time.as_ps() > 0);
        prop_assert_eq!(r.messages_injected, r.messages_delivered);
    }

    /// Single-line torture: every core hammers ONE line with stores —
    /// the worst possible invalidation/fetch ping-pong.
    #[test]
    fn single_line_store_storm(seed_ops in prop::collection::vec(0u8..2, 40..120)) {
        struct Storm {
            script: Vec<Op>,
            pos: Vec<usize>,
        }
        impl Workload for Storm {
            fn num_cores(&self) -> usize {
                self.pos.len()
            }
            fn name(&self) -> &'static str {
                "storm"
            }
            fn next_op(&mut self, core: usize) -> Op {
                let i = self.pos[core];
                self.pos[core] += 1;
                self.script.get(i).copied().unwrap_or(Op::Halt)
            }
        }
        let script: Vec<Op> = seed_ops
            .iter()
            .map(|&b| if b == 0 { Op::Load(0) } else { Op::Store(0) })
            .collect();
        let cfg = CmpConfig::tiled(2);
        let net = SystemConfig::make_network_kind(2, NetworkKind::Emesh);
        let mut sim = CmpSim::new(cfg, net, Box::new(Storm { script, pos: vec![0; 4] }));
        let r = sim.run(&mut NullHook);
        prop_assert!(r.messages_injected > 0);
    }
}

#[test]
fn wide_fan_invalidation_storm_terminates() {
    // All 16 cores read one line (16 sharers), then all store it in
    // turn: repeated full-width invalidation broadcasts.
    struct Wide {
        pos: Vec<usize>,
    }
    impl Workload for Wide {
        fn num_cores(&self) -> usize {
            self.pos.len()
        }
        fn name(&self) -> &'static str {
            "wide"
        }
        fn next_op(&mut self, core: usize) -> Op {
            let i = self.pos[core];
            self.pos[core] += 1;
            match i {
                0..=4 => Op::Load((i as u64) * 64),
                5 => Op::Barrier(0),
                6..=10 => Op::Store(((i - 6) as u64) * 64),
                11 => Op::Barrier(1),
                12..=16 => Op::Load(((i - 12) as u64) * 64),
                _ => Op::Halt,
            }
        }
    }
    for kind in NetworkKind::DETAILED {
        let cfg = CmpConfig::tiled(4);
        let net = SystemConfig::make_network_kind(4, kind);
        let mut sim = CmpSim::new(cfg, net, Box::new(Wide { pos: vec![0; 16] }));
        let r = sim.run(&mut NullHook);
        assert!(r.messages_injected > 100, "{}", kind.label());
    }
}
