//! Deterministic parallel sweep executor.
//!
//! Replaces the old thread-per-job harness: a fixed pool of scoped
//! workers pulls job indices off a shared atomic counter, runs each
//! closure exactly once, and writes its result into a slot keyed by the
//! job's input position. Because every job builds its own simulators and
//! seeds its own [`crate::rng::StreamRng`] streams, and because results
//! are collected strictly in index order, the output is **bit-identical
//! to serial execution** regardless of thread count or OS scheduling —
//! parallelism only changes *when* a job runs, never *what* it computes
//! or *where* its result lands.
//!
//! The pool honours `RAYON_NUM_THREADS` (the conventional knob) and
//! `SCTM_NUM_THREADS` (ours, takes precedence) so sweeps can be pinned
//! for reproducible timing experiments; otherwise it uses every
//! available core. Pools are scoped per call: nested `par_map` calls
//! cannot deadlock, they just briefly oversubscribe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count for [`par_map`]: `SCTM_NUM_THREADS` or
/// `RAYON_NUM_THREADS` if set to a positive integer, else the number of
/// available cores.
pub fn num_threads() -> usize {
    let env = |k: &str| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    };
    env("SCTM_NUM_THREADS")
        .or_else(|| env("RAYON_NUM_THREADS"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Shard-worker count for parallel CMP capture: `SCTM_THREADS` if set to
/// a positive integer, else 1 (sequential capture — the default keeps
/// the classic single-threaded path untouched unless the user opts in).
///
/// Distinct from [`num_threads`] on purpose: sweep parallelism
/// (`SCTM_NUM_THREADS`) fans out independent experiments, while capture
/// parallelism shards *one* simulation and changes its execution
/// schedule (though never its results — see `sctm-cmp`'s `par` module).
pub fn capture_threads() -> usize {
    std::env::var("SCTM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// A sense-reversing spin barrier for tightly-coupled epoch loops.
///
/// `std::sync::Barrier` parks threads on a mutex/condvar, which costs
/// microseconds per crossing — ruinous when a parallel capture crosses
/// two barriers per epoch and runs tens of thousands of epochs. This
/// barrier spins (with a `yield_now` backoff so oversubscribed hosts
/// still make progress), reducing a crossing to a handful of atomic
/// operations when all participants are running.
///
/// Memory ordering: the generation bump is a release store observed with
/// acquire loads, so writes made by any participant before `wait()` are
/// visible to every participant after it — the property the epoch
/// runner's mailbox exchange relies on.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block until all `n` participants have called `wait`. Returns
    /// `true` on exactly one participant per crossing (the last to
    /// arrive), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            // Last arrival: reset the counter for the next crossing,
            // then release the generation bump that frees the spinners.
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return true;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        false
    }
}

/// Run `jobs` on a scoped worker pool and return their results in input
/// order. Bit-identical to [`serial_map`] (see module docs). Panics in a
/// job propagate once the pool has been joined.
pub fn par_map<T: Send, F: FnOnce() -> T + Send>(jobs: Vec<F>) -> Vec<T> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = num_threads().min(n);
    if workers <= 1 {
        return serial_map(jobs);
    }

    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job taken twice");
                let result = job();
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("experiment worker panicked")
        })
        .collect()
}

/// Serial reference executor with the same contract as [`par_map`]; used
/// by the determinism test and as the 1-thread fast path.
pub fn serial_map<T, F: FnOnce() -> T>(jobs: Vec<F>) -> Vec<T> {
    jobs.into_iter().map(|j| j()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let jobs: Vec<_> = (0..64u64).map(|i| move || i * i).collect();
        let got = par_map(jobs);
        let want: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(par_map(empty).is_empty());
        assert_eq!(par_map(vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn nested_calls_complete() {
        let jobs: Vec<_> = (0..4u64)
            .map(|i| move || par_map((0..8u64).map(|j| move || i * 100 + j).collect::<Vec<_>>()))
            .collect();
        let got = par_map(jobs);
        for (i, inner) in got.iter().enumerate() {
            let want: Vec<u64> = (0..8).map(|j| i as u64 * 100 + j).collect();
            assert_eq!(inner, &want);
        }
    }

    #[test]
    fn spin_barrier_synchronises_counters() {
        use std::sync::atomic::AtomicU64;
        let threads = 4;
        let rounds = 200;
        let barrier = SpinBarrier::new(threads);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for r in 0..rounds {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Between crossings every thread must observe the
                        // full round's increments.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= (r + 1) * threads as u64, "seen={seen} round={r}");
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), rounds * threads as u64);
    }

    #[test]
    fn spin_barrier_leader_is_unique() {
        let threads = 3;
        let barrier = SpinBarrier::new(threads);
        use std::sync::atomic::AtomicU64;
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn capture_threads_defaults_to_one() {
        // The env var is unset in the test harness; the default must be
        // the sequential path.
        if std::env::var("SCTM_THREADS").is_err() {
            assert_eq!(capture_threads(), 1);
        } else {
            assert!(capture_threads() >= 1);
        }
    }

    #[test]
    fn matches_serial_reference() {
        let mk = || {
            (0..32u64)
                .map(|i| move || i.wrapping_mul(0x9E37_79B9))
                .collect::<Vec<_>>()
        };
        assert_eq!(par_map(mk()), serial_map(mk()));
    }
}
