//! Tracing overhead on the omesh drain microbench.
//!
//! The acceptance bar for the observability layer: with instrumentation
//! compiled in but **disabled**, the omesh drain must stay within 2% of
//! the pre-instrumentation baseline (each sim_event site costs one
//! relaxed atomic load and a branch). The enabled case is measured too,
//! for the honest cost of turning tracing on — events are drained and
//! discarded between iterations so the ring buffers never saturate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sctm_bench::bench_network;
use sctm_core::NetworkKind;
use sctm_engine::net::{Message, MsgClass, MsgId, NodeId};
use sctm_engine::rng::StreamRng;
use sctm_engine::time::SimTime;
use sctm_obs as obs;

fn traffic(n: usize, count: u64, seed: u64) -> Vec<(SimTime, Message)> {
    let mut rng = StreamRng::new(seed);
    (0..count)
        .map(|i| {
            let src = rng.below(n as u64) as u32;
            let mut dst = rng.below(n as u64) as u32;
            if dst == src {
                dst = (dst + 1) % n as u32;
            }
            let data = rng.chance(0.5);
            (
                SimTime::from_ns(rng.below(4_000)),
                Message {
                    id: MsgId(i),
                    src: NodeId(src),
                    dst: NodeId(dst),
                    class: if data {
                        MsgClass::Data
                    } else {
                        MsgClass::Control
                    },
                    bytes: if data { 72 } else { 8 },
                },
            )
        })
        .collect()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead_omesh_2k_msgs");
    let side = 8;
    let msgs = traffic(side * side, 2000, 42);
    for &on in &[false, true] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if on { "tracing_on" } else { "tracing_off" }),
            &on,
            |b, &on| {
                obs::set_enabled(on);
                b.iter(|| {
                    let mut net = bench_network(NetworkKind::Omesh, side);
                    for &(t, m) in &msgs {
                        net.inject(t, m);
                    }
                    let mut out = Vec::with_capacity(msgs.len());
                    net.drain(&mut out);
                    assert_eq!(out.len(), msgs.len());
                    if on {
                        black_box(obs::drain().len());
                    }
                    black_box(out.len())
                });
                obs::set_enabled(false);
                obs::drain();
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_overhead
}
criterion_main!(benches);
