//! `sctf` — capture, convert, inspect, verify, and replay trace
//! containers (DESIGN.md §14).
//!
//! ```text
//! sctf capture out.sctf [--side N] [--kernel K] [--ops N] [--seed N]
//! sctf convert in.trace.csv out.sctf      # either direction
//! sctf inspect trace.sctf                 # header + column stats
//! sctf verify trace.sctf                  # full decode + checksum walk
//! sctf replay trace.sctf [--net KIND] [--side N] [--engine E]
//! ```
//!
//! The on-disk format is picked by extension on writes (`.sctf` →
//! binary container, anything else → CSV text) and sniffed by magic on
//! reads, so `convert` is just load + save. `replay` prints a
//! deterministic one-line JSON manifest — record count, engine,
//! network, estimated execution time, and an FNV-1a digest of the full
//! inject/deliver timeline — which CI diffs to prove a trace that
//! round-tripped through `convert` still replays bit-identically.

use sctm_core::{Experiment, NetworkKind, SystemConfig};
use sctm_trace::{
    replay_fixed, replay_oracle, replay_sctm_pass, ReplayResult, SctfReader, TraceLog,
};
use sctm_workloads::Kernel;

fn usage() -> ! {
    eprintln!(
        "usage: sctf capture OUT [--side N] [--kernel K] [--ops N] [--seed N]\n\
         \x20      sctf convert IN OUT\n\
         \x20      sctf inspect PATH\n\
         \x20      sctf verify PATH\n\
         \x20      sctf replay PATH [--net KIND] [--side N] [--engine fixed|sctm|oracle]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("sctf: {msg}");
    std::process::exit(1);
}

/// Value of `--flag` in `args`, parsed.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("bad value for {name}: {v:?}")))
        })
}

fn flag_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Positional (non-`--`) operands, skipping flag values.
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
        } else if a.starts_with("--") {
            skip = true;
        } else {
            out.push(a);
        }
    }
    out
}

fn load(path: &str) -> TraceLog {
    TraceLog::load(path).unwrap_or_else(|e| fail(&format!("load {path}: {e}")))
}

/// Smallest mesh side whose `side²` cores cover every node id in the
/// trace (power-of-two, as the kernels require).
fn infer_side(log: &TraceLog) -> usize {
    let max_node = log
        .records
        .iter()
        .map(|r| r.msg.src.0.max(r.msg.dst.0) as usize)
        .max()
        .unwrap_or(0);
    let mut side = 2usize;
    while side * side <= max_node {
        side *= 2;
    }
    side
}

/// FNV-1a 64 over the replay timeline: every inject and deliver
/// instant in dense id order, then the estimate. One flipped
/// picosecond anywhere changes the digest.
fn timeline_digest(r: &ReplayResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for t in r.inject.iter().chain(r.deliver.iter()) {
        eat(t.as_ps());
    }
    eat(r.est_exec_time.as_ps());
    h
}

fn cmd_capture(args: &[String]) {
    let pos = positionals(args);
    let [out] = pos[..] else { usage() };
    let side: usize = flag(args, "--side").unwrap_or(4);
    let ops: usize = flag(args, "--ops").unwrap_or(400);
    if ops < 64 {
        fail("--ops must be at least 64 (shorter scripts are noise)");
    }
    let seed: u64 = flag(args, "--seed").unwrap_or(1);
    let label = flag_str(args, "--kernel").unwrap_or("fft");
    let kernel = *Kernel::ALL
        .iter()
        .find(|k| k.label() == label)
        .unwrap_or_else(|| fail(&format!("unknown kernel {label:?}")));
    let log = Experiment::new(SystemConfig::new(side, NetworkKind::Omesh), kernel)
        .with_ops(ops)
        .with_seed(seed)
        .capture();
    log.save(out)
        .unwrap_or_else(|e| fail(&format!("save {out}: {e}")));
    eprintln!(
        "captured {} records ({} on {} cores) -> {out}",
        log.len(),
        kernel.label(),
        side * side
    );
}

fn cmd_convert(args: &[String]) {
    let pos = positionals(args);
    let [input, out] = pos[..] else { usage() };
    let log = load(input);
    log.save(out)
        .unwrap_or_else(|e| fail(&format!("save {out}: {e}")));
    eprintln!("{} records: {input} -> {out}", log.len());
}

fn cmd_inspect(args: &[String]) {
    let pos = positionals(args);
    let [path] = pos[..] else { usage() };
    let bytes = std::fs::read(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    if bytes.starts_with(&sctm_trace::sctf::SCTF_MAGIC) {
        let r = SctfReader::from_bytes(&bytes)
            .unwrap_or_else(|e| fail(&format!("invalid container {path}: {e}")));
        let n = r.len().max(1);
        let (doff, stream) = r.deps_csr();
        println!("format          sctf v{}", sctm_trace::sctf::SCTF_VERSION);
        println!("records         {}", r.len());
        println!("capture net     {}", r.capture_net());
        println!("capture exec    {}", r.capture_exec_time());
        println!(
            "container       {} B ({:.1} B/record)",
            r.byte_len(),
            r.byte_len() as f64 / n as f64
        );
        let edges = r.children_csr().map_or(0, |(_, adj)| adj.len());
        println!(
            "deps            {} edges, {} stream bytes (offsets {})",
            edges,
            stream.len(),
            doff.len()
        );
        println!(
            "children csr    {}",
            if r.children_csr().is_some() {
                "stored (zero-copy replay install)"
            } else {
                "absent (built on demand)"
            }
        );
    } else {
        let log = load(path);
        println!("format          csv (sctm-trace-v1)");
        println!("records         {}", log.len());
        println!("capture net     {}", log.capture_net);
        println!("capture exec    {}", log.capture_exec_time);
        println!(
            "text            {} B   parsed resident {} B   sctf would be {} B",
            bytes.len(),
            log.resident_bytes(),
            sctm_trace::sctf::encoded_size(&log)
        );
    }
}

fn cmd_verify(args: &[String]) {
    let pos = positionals(args);
    let [path] = pos[..] else { usage() };
    let bytes = std::fs::read(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let log = load(path);
    if bytes.starts_with(&sctm_trace::sctf::SCTF_MAGIC) {
        // Decode already re-walked the checksum and every section
        // bound; prove the columns also reassemble into the exact
        // container we read.
        let back = sctm_trace::sctf::to_sctf_bytes(&log);
        if back != bytes {
            fail(&format!(
                "{path}: container decodes but does not re-encode byte-identically"
            ));
        }
    } else {
        let back = TraceLog::from_csv_str(&log.to_csv_string())
            .unwrap_or_else(|e| fail(&format!("{path}: csv round-trip failed: {e}")));
        if back.to_csv_string() != log.to_csv_string() {
            fail(&format!("{path}: csv round-trip is not stable"));
        }
    }
    println!("ok: {} records, {} bytes, {path}", log.len(), bytes.len());
}

fn cmd_replay(args: &[String]) {
    let pos = positionals(args);
    let [path] = pos[..] else { usage() };
    let log = load(path);
    let kind = NetworkKind::from_label(flag_str(args, "--net").unwrap_or("omesh"))
        .unwrap_or_else(|e| fail(&format!("{e}")));
    let side: usize = flag(args, "--side").unwrap_or_else(|| infer_side(&log));
    let engine = flag_str(args, "--engine").unwrap_or("oracle");
    let run = match engine {
        "fixed" => replay_fixed,
        "sctm" => replay_sctm_pass,
        "oracle" => replay_oracle,
        other => fail(&format!("unknown engine {other:?}")),
    };
    let mut net = SystemConfig::make_network_kind(side, kind);
    let r = run(&log, net.as_mut());
    // Deterministic manifest: same trace + same flags must print the
    // same line, whatever path the container took to get here.
    println!(
        "{{\"records\":{},\"engine\":\"{engine}\",\"net\":\"{}\",\"side\":{side},\"est_exec_ps\":{},\"timeline_fnv64\":\"{:016x}\"}}",
        log.len(),
        kind.label(),
        r.est_exec_time.as_ps(),
        timeline_digest(&r)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];
    match cmd.as_str() {
        "capture" => cmd_capture(rest),
        "convert" => cmd_convert(rest),
        "inspect" => cmd_inspect(rest),
        "verify" => cmd_verify(rest),
        "replay" => cmd_replay(rest),
        _ => usage(),
    }
}
