//! Total (never-panicking) field extraction for the flat single-line
//! JSON frames `sctmd` emits.
//!
//! The service's frames are flat objects with known key names, so a
//! full JSON parser is not required: a scan for `"key":` followed by a
//! string or integer literal is exact on well-formed frames and safely
//! returns `None` on anything else. The scan respects string escapes,
//! so a `"key":` *inside* a string value (say, an error message quoting
//! a request) is never mistaken for the field itself.

/// Extract `"name":"value"` from a flat JSON object, unescaping the
/// value. `None` if absent or not a string.
pub fn json_str_field(json: &str, name: &str) -> Option<String> {
    let rest = find_field(json, name)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if hex.len() != 4 {
                        return None;
                    }
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    // Surrogates never appear in our frames (json_escape
                    // only \u-escapes control chars); reject them rather
                    // than emit garbage.
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Extract `"name":123` from a flat JSON object. `None` if absent or
/// not an unsigned integer.
pub fn json_u64_field(json: &str, name: &str) -> Option<u64> {
    let rest = find_field(json, name)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Position the cursor just after `"name":` (and any whitespace),
/// skipping occurrences inside string values.
fn find_field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\"");
    let bytes = json.as_bytes();
    let mut in_string = false;
    let mut escaped = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        if b == b'"' {
            // At a top-level string start: is it our key?
            if json[i..].starts_with(&needle) {
                let after = &json[i + needle.len()..];
                let after = after.trim_start();
                if let Some(rest) = after.strip_prefix(':') {
                    return Some(rest.trim_start());
                }
            }
            in_string = true;
            i += 1;
            continue;
        }
        i += 1;
    }
    None
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard (RFC 4648, padded) base64 — how binary trace containers
/// ride inside the service's single-line JSON frames.
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let v = u32::from(b[0]) << 16 | u32::from(b[1]) << 8 | u32::from(b[2]);
        for i in 0..4 {
            if i <= chunk.len() {
                out.push(B64_ALPHABET[(v >> (18 - 6 * i)) as usize & 0x3f] as char);
            } else {
                out.push('=');
            }
        }
    }
    out
}

/// Total base64 decoder: `None` on any byte outside the alphabet, bad
/// padding, or a length that is not a multiple of four.
pub fn b64_decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (c, chunk) in bytes.chunks(4).enumerate() {
        let last = (c + 1) * 4 == bytes.len();
        let mut v: u32 = 0;
        let mut data = 0usize;
        for (i, &b) in chunk.iter().enumerate() {
            if b == b'=' {
                // Padding: only in the final chunk's last two slots,
                // with nothing but '=' after it.
                if !last || i < 2 || chunk[i..].iter().any(|&p| p != b'=') {
                    return None;
                }
                data = i;
                v <<= 6 * (4 - i) as u32;
                break;
            }
            let d = B64_ALPHABET.iter().position(|&a| a == b)? as u32;
            v = v << 6 | d;
            data = i + 1;
        }
        match data {
            4 => out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8, v as u8]),
            3 => out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8]),
            2 => out.push((v >> 16) as u8),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_string_and_integer_fields() {
        let j = r#"{"status":"ok","id":"r-1","wall_ns":123456,"cache":"hit"}"#;
        assert_eq!(json_str_field(j, "status").as_deref(), Some("ok"));
        assert_eq!(json_str_field(j, "id").as_deref(), Some("r-1"));
        assert_eq!(json_u64_field(j, "wall_ns"), Some(123456));
        assert_eq!(json_str_field(j, "missing"), None);
        assert_eq!(json_u64_field(j, "id"), None);
    }

    #[test]
    fn unescapes_values() {
        let j = r#"{"message":"line1\nline\"2\"\tA"}"#;
        assert_eq!(
            json_str_field(j, "message").as_deref(),
            Some("line1\nline\"2\"\tA")
        );
    }

    #[test]
    fn a_key_name_inside_a_string_value_is_not_a_field() {
        let j = r#"{"message":"fake \"status\":\"ok\" here","status":"error"}"#;
        assert_eq!(json_str_field(j, "status").as_deref(), Some("error"));
    }

    #[test]
    fn total_on_truncated_and_garbage_input() {
        for j in [
            "",
            "{",
            r#"{"status""#,
            r#"{"status":"#,
            r#"{"status":""#,
            r#"{"status":"ok"#,
            r#"{"x":"\u12"#,
            r#"{"x":"\q"}"#,
            "\\\"\\\"\\",
        ] {
            let _ = json_str_field(j, "status");
            let _ = json_str_field(j, "x");
            let _ = json_u64_field(j, "status");
        }
    }

    #[test]
    fn b64_known_vectors() {
        // RFC 4648 test vectors.
        let cases: [(&[u8], &str); 5] = [
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, enc) in cases {
            assert_eq!(b64_encode(raw), enc);
            assert_eq!(b64_decode(enc).as_deref(), Some(raw));
        }
    }

    #[test]
    fn b64_roundtrips_all_byte_values() {
        let all: Vec<u8> = (0..=255u8).collect();
        for cut in [0, 1, 2, 3, 255, 256] {
            let raw = &all[..cut.min(all.len())];
            assert_eq!(b64_decode(&b64_encode(raw)).as_deref(), Some(raw));
        }
    }

    #[test]
    fn b64_decode_rejects_malformed() {
        for bad in ["A", "AB=x", "====", "A===", "Zm9v!", "Zg==Zg=="] {
            assert_eq!(b64_decode(bad), None, "{bad:?}");
        }
    }
}
