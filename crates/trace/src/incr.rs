//! Incremental self-correction replay: dirty-frontier resume from
//! epoch checkpoints.
//!
//! The outer self-correction loop (sctm-core `Mode::SelfCorrection`)
//! re-runs a full gated replay every iteration, even though late
//! iterations move only a handful of correction factors. This module
//! makes the replay *incremental*: each pass records full replay state
//! (network snapshot, readiness arrays, injection heap) at epoch
//! boundaries; the next pass diffs its per-message inputs against the
//! previous pass, finds the **dirty set** — messages whose capture
//! timing, gating structure, or payload moved — and resumes from the
//! latest checkpoint the dirty set cannot reach back past, splicing
//! the untouched prefix.
//!
//! The contract is **bit identity**: at every iteration count, thread
//! count and damping setting, the incremental pass must produce the
//! same [`ReplayResult`] — down to float bits of the derived means —
//! as a from-scratch [`crate::replay::replay_sctm_pass_with`]. The
//! argument is laid
//! out in DESIGN.md §11; the crucial invariants are:
//!
//! 1. A gated pass is fully determined by four per-message inputs:
//!    the message key (src, dst, class, bytes), the capture-anchored
//!    delta, the arrival gate, and the per-source predecessor. If all
//!    four are unchanged for every message, the pass is unchanged
//!    (splice). If the trace *length* changed, message ids no longer
//!    line up and we fall back to a full pass.
//! 2. Each checkpoint carries a **frontier**: the running maximum of
//!    every time the pass has observed — admitted injections, batch
//!    stops, network horizons, delivery instants. A checkpoint is
//!    valid for a dirty set iff no dirty message was injected before
//!    it and every dirty message's *reconstructed* heap entry lies
//!    strictly beyond the frontier; then the prefix of the new pass is
//!    provably identical to the recorded prefix, so restoring it is
//!    exact, not approximate.
//! 3. On resume, checkpoints kept from earlier epochs are **fixed up**
//!    in place with the same reconstruction, so they describe the new
//!    pass and stay usable for future resumes.
//!
//! Measured honestly: on workloads whose consecutive captures change
//! length (the 64-core fft flagship does — corrected factors shift
//! protocol interleaving enough to add/drop messages), every pass after
//! the first falls back to full replay and the win is bounded by the
//! recording heuristic keeping overhead near zero. The headline gains
//! come from converged tails, damping-off sweeps (iterations 2+ splice
//! entirely), and replay-only re-runs over a fixed trace.

use std::cmp::Reverse;

use sctm_engine::net::{MsgClass, NetworkModel};
use sctm_engine::time::SimTime;

use crate::log::TraceLog;
use crate::replay::{prepare_gated, ReplayResult, ReplayScratch, NONE};

/// The per-message identity the gated pass actually consumes from a
/// record. Two traces whose keys, deltas, gates and predecessors all
/// agree produce bit-identical passes regardless of any other record
/// field (timestamps only reach the pass through the delta).
#[derive(Clone, Copy, PartialEq, Eq)]
struct MsgKey {
    src: u32,
    dst: u32,
    class: MsgClass,
    bytes: u32,
}

/// The complete pass-determining input vector of one trace.
struct Inputs {
    key: Vec<MsgKey>,
    delta: Vec<SimTime>,
    /// Arrival gate per message (`NONE` = ungated).
    gate: Vec<u32>,
    /// Per-source predecessor per message (`NONE` = first from source).
    prev: Vec<u32>,
}

impl Inputs {
    fn from_scratch(log: &TraceLog, scratch: &ReplayScratch) -> Self {
        let key = log
            .records
            .iter()
            .map(|r| MsgKey {
                src: r.msg.src.0,
                dst: r.msg.dst.0,
                class: r.msg.class,
                bytes: r.msg.bytes,
            })
            .collect();
        let gate = scratch
            .gates
            .iter()
            .map(|g| g.map_or(NONE, |m| m.0 as u32))
            .collect();
        Inputs {
            key,
            delta: scratch.delta.clone(),
            gate,
            prev: scratch.prev_in_order.clone(),
        }
    }
}

/// Full mid-pass replay state at one epoch boundary.
struct Checkpoint {
    /// Epoch index (delivered / epoch_size at recording time).
    epoch: usize,
    delivered: usize,
    /// Running max of every time the pass observed up to here; see
    /// module docs and DESIGN.md §11.2.
    frontier: SimTime,
    inject: Vec<SimTime>,
    deliver: Vec<SimTime>,
    done: Vec<bool>,
    gate_done: Vec<bool>,
    gate_time: Vec<SimTime>,
    prev_done: Vec<bool>,
    prev_time: Vec<SimTime>,
    scheduled: Vec<bool>,
    /// Pending injection heap, as raw `(time, id)` pairs. Keys are
    /// unique (the id breaks ties), so rebuilding a `BinaryHeap` from
    /// this in any order reproduces the exact pop sequence.
    heap: Vec<(SimTime, u32)>,
    net: Box<dyn NetworkModel>,
}

impl Checkpoint {
    fn approx_bytes(&self) -> u64 {
        let n = self.inject.len() as u64;
        // SimTime vectors (8B each × 4), bool vectors (1B × 4 + done),
        // heap entries (12B). The network snapshot is opaque; it is
        // deliberately not counted — the counter tracks what *this*
        // module adds on top of the model's own footprint.
        n * (8 * 4 + 5) + self.heap.len() as u64 * 12
    }
}

/// Reconstructed readiness state for one dirty message at a checkpoint.
struct Reinit {
    gate_done: bool,
    gate_time: SimTime,
    prev_done: bool,
    prev_time: SimTime,
    /// Heap entry the new pass would have pushed by now, if any.
    entry: Option<SimTime>,
}

/// How one incremental pass was executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassKind {
    /// From-scratch gated pass (first pass, or no usable checkpoint).
    Full,
    /// Inputs identical to the previous pass: previous result and final
    /// network snapshot returned without simulating anything.
    Spliced,
    /// Restored the checkpoint at this epoch and re-simulated the tail.
    Resumed { from_epoch: usize },
}

/// Telemetry for one incremental pass; feeds the `sctm.incr.*`
/// observability counters.
#[derive(Clone, Copy, Debug)]
pub struct IncrPassStats {
    pub kind: PassKind,
    /// Messages whose pass inputs moved since the previous pass.
    pub dirty: u64,
    /// Epochs whose work was reused (restored or spliced over).
    pub epochs_restored: u64,
    /// Epochs actually re-simulated this pass.
    pub epochs_replayed: u64,
    /// Approximate bytes held by live checkpoints after this pass
    /// (excluding network snapshots; see [`Checkpoint::approx_bytes`]).
    pub checkpoint_bytes: u64,
    /// Why the pass fell back to full replay, if it did.
    pub fallback: Option<&'static str>,
    /// This pass's trace length.
    pub trace_len: u64,
    /// The previous pass's trace length (0 on the first pass). A
    /// length-mismatch fallback is exactly `trace_len != prev_len` —
    /// the churn quantity the §P6 flagship discussion is about.
    pub prev_len: u64,
}

impl IncrPassStats {
    /// The pass kind as a stable lowercase label, for decision
    /// telemetry and reports.
    pub fn kind_label(&self) -> &'static str {
        match self.kind {
            PassKind::Full => "full",
            PassKind::Spliced => "spliced",
            PassKind::Resumed { .. } => "resumed",
        }
    }

    /// The fallback cause as a canonical snake_case identifier for the
    /// decision-telemetry namespace (`sctm.conv.cause.<cause>`); the
    /// raw [`IncrPassStats::fallback`] strings are a stable wire
    /// contract of their own and stay as they are.
    pub fn cause(&self) -> Option<&'static str> {
        self.fallback.map(|f| match f {
            "first-pass" => "first_pass",
            "length-mismatch" => "length_churn",
            "no-snapshot" => "no_snapshot",
            "no-checkpoints" => "no_checkpoints",
            "frontier-too-early" => "frontier_too_early",
            _ => "unknown",
        })
    }
}

/// Working arrays of one in-flight pass.
struct PassState {
    inject: Vec<SimTime>,
    deliver: Vec<SimTime>,
    done: Vec<bool>,
    delivered: usize,
    frontier: SimTime,
}

impl PassState {
    fn fresh(n: usize) -> Self {
        PassState {
            inject: vec![SimTime::MAX; n],
            deliver: vec![SimTime::ZERO; n],
            done: vec![false; n],
            delivered: 0,
            frontier: SimTime::ZERO,
        }
    }
}

/// Incremental replay engine for the self-correction loop. One
/// instance lives across all iterations of a loop; each call to
/// [`IncrReplayer::replay`] is one pass.
pub struct IncrReplayer {
    /// Target number of checkpoints per pass (delivery-count epochs).
    epochs: usize,
    prev: Option<Inputs>,
    prev_inject: Vec<SimTime>,
    prev_deliver: Vec<SimTime>,
    ckpts: Vec<Checkpoint>,
    /// End-of-pass network snapshot, for the all-clean splice path.
    final_net: Option<Box<dyn NetworkModel>>,
    /// Scratch: dirty ids and a parallel flag vector.
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
}

impl Default for IncrReplayer {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrReplayer {
    pub fn new() -> Self {
        IncrReplayer {
            epochs: 8,
            prev: None,
            prev_inject: Vec::new(),
            prev_deliver: Vec::new(),
            ckpts: Vec::new(),
            final_net: None,
            dirty: Vec::new(),
            dirty_flag: Vec::new(),
        }
    }

    /// Override the per-pass checkpoint count (default 8). More epochs
    /// mean finer resume granularity and more snapshot memory.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// One incremental gated pass over `log`, replacing `*net` with the
    /// pass's final network state. Bit-identical to
    /// [`crate::replay::replay_sctm_pass_with`] on the same inputs.
    pub fn replay(
        &mut self,
        log: &TraceLog,
        net: &mut Box<dyn NetworkModel>,
        scratch: &mut ReplayScratch,
    ) -> (ReplayResult, IncrPassStats) {
        let n = log.len();
        let epoch_size = (n / self.epochs).max(1);
        let total_epochs = n.div_ceil(epoch_size);
        // Shared prep: gates, chains, deltas, CSR, readiness, seeds.
        // This is exactly what a from-scratch gated pass starts from.
        prepare_gated(log, false, scratch);
        let inputs = Inputs::from_scratch(log, scratch);
        let snap_ok = net.snapshot().is_some();

        let mut stats = IncrPassStats {
            kind: PassKind::Full,
            dirty: 0,
            epochs_restored: 0,
            epochs_replayed: total_epochs as u64,
            checkpoint_bytes: 0,
            fallback: None,
            trace_len: n as u64,
            prev_len: self.prev.as_ref().map_or(0, |p| p.key.len() as u64),
        };

        // Diff against the previous pass (if shapes line up). Checkpoint
        // recording is deferred until an equal-length diff has proven
        // that message ids are stable across passes: a workload whose
        // corrected captures change length every iteration (the flagship
        // 64-core fft does) would otherwise pay for epoch snapshots it
        // can never resume from.
        let mut record = false;
        match &self.prev {
            None => stats.fallback = Some("first-pass"),
            Some(p) if p.key.len() != n => {
                // Message ids no longer line up; nothing to reuse.
                stats.fallback = Some("length-mismatch");
                self.ckpts.clear();
            }
            Some(p) => {
                self.dirty.clear();
                self.dirty_flag.clear();
                self.dirty_flag.resize(n, false);
                for i in 0..n {
                    if p.key[i] != inputs.key[i]
                        || p.delta[i] != inputs.delta[i]
                        || p.gate[i] != inputs.gate[i]
                        || p.prev[i] != inputs.prev[i]
                    {
                        self.dirty.push(i as u32);
                        self.dirty_flag[i] = true;
                    }
                }
                stats.dirty = self.dirty.len() as u64;

                if self.dirty.is_empty() {
                    if let Some(fnet) = &self.final_net {
                        // Identical inputs: the previous pass *is* this
                        // pass. Hand back its result and final network.
                        *net = fnet
                            .snapshot()
                            .expect("snapshot-capable net lost the ability");
                        let result = ReplayResult::from_times(
                            log,
                            self.prev_inject.clone(),
                            self.prev_deliver.clone(),
                        );
                        stats.kind = PassKind::Spliced;
                        stats.epochs_restored = total_epochs as u64;
                        stats.epochs_replayed = 0;
                        stats.checkpoint_bytes =
                            self.ckpts.iter().map(Checkpoint::approx_bytes).sum();
                        return (result, stats);
                    }
                    stats.fallback = Some("no-snapshot");
                } else if snap_ok {
                    // Equal-length dirty pass: ids are stable, so epoch
                    // snapshots taken now can serve the next iteration.
                    record = true;
                    // Latest checkpoint the dirty set cannot reach back
                    // past. Validity is monotone (a set valid at a late
                    // checkpoint is valid at every earlier one), so the
                    // first hit scanning from the back is the best.
                    let hit = self.ckpts.iter().enumerate().rev().find_map(|(i, ck)| {
                        plan_for(ck, &self.dirty, &inputs).map(|plan| (i, plan))
                    });
                    match hit {
                        None => {
                            stats.fallback = Some(if self.ckpts.is_empty() {
                                "no-checkpoints"
                            } else {
                                "frontier-too-early"
                            })
                        }
                        Some((i, _)) => {
                            return self.resume(log, net, scratch, inputs, i, epoch_size, stats);
                        }
                    }
                } else {
                    stats.fallback = Some("no-snapshot");
                }
            }
        }

        // Full pass.
        self.ckpts.clear();
        let mut state = PassState::fresh(n);
        self.run_gated(log, net.as_mut(), scratch, &mut state, record, epoch_size);
        let result = self.finish(log, net.as_ref(), state);
        self.prev = Some(inputs);
        stats.checkpoint_bytes = self.ckpts.iter().map(Checkpoint::approx_bytes).sum();
        (result, stats)
    }

    /// Restore checkpoint `idx`, fix up the kept prefix, and re-simulate
    /// the tail.
    #[allow(clippy::too_many_arguments)]
    fn resume(
        &mut self,
        log: &TraceLog,
        net: &mut Box<dyn NetworkModel>,
        scratch: &mut ReplayScratch,
        inputs: Inputs,
        idx: usize,
        epoch_size: usize,
        mut stats: IncrPassStats,
    ) -> (ReplayResult, IncrPassStats) {
        let n = log.len();
        let total_epochs = n.div_ceil(epoch_size);
        self.ckpts.truncate(idx + 1);
        // Every kept checkpoint still holds the *previous* pass's values
        // at dirty indices; rewrite them so the prefix describes the new
        // pass and stays valid for future resumes. Validity is monotone,
        // so earlier plans should always exist; a checkpoint whose plan
        // fails anyway is dropped defensively rather than kept stale.
        let mut fixed: Vec<Checkpoint> = Vec::with_capacity(self.ckpts.len());
        for mut ck in self.ckpts.drain(..) {
            let Some(plan) = plan_for(&ck, &self.dirty, &inputs) else {
                debug_assert!(false, "checkpoint validity must be monotone");
                continue;
            };
            ck.heap.retain(|&(_, i)| !self.dirty_flag[i as usize]);
            for &(c, ref r) in &plan {
                ck.gate_done[c] = r.gate_done;
                ck.gate_time[c] = r.gate_time;
                ck.prev_done[c] = r.prev_done;
                ck.prev_time[c] = r.prev_time;
                ck.scheduled[c] = r.entry.is_some();
                if let Some(t) = r.entry {
                    ck.heap.push((t, c as u32));
                }
            }
            fixed.push(ck);
        }
        self.ckpts = fixed;
        let ck = self.ckpts.last().expect("resume target survived fixup");

        // Restore: network snapshot, readiness arrays, heap, outputs.
        *net = ck
            .net
            .snapshot()
            .expect("snapshot-capable net lost the ability");
        scratch.gate_done.clone_from(&ck.gate_done);
        scratch.gate_time.clone_from(&ck.gate_time);
        scratch.prev_done.clone_from(&ck.prev_done);
        scratch.prev_time.clone_from(&ck.prev_time);
        scratch.scheduled.clone_from(&ck.scheduled);
        scratch.heap.clear();
        scratch.heap.extend(ck.heap.iter().map(|&e| Reverse(e)));
        let mut state = PassState {
            inject: ck.inject.clone(),
            deliver: ck.deliver.clone(),
            done: ck.done.clone(),
            delivered: ck.delivered,
            frontier: ck.frontier,
        };
        stats.kind = PassKind::Resumed {
            from_epoch: ck.epoch,
        };
        stats.epochs_restored = ck.epoch as u64;
        stats.epochs_replayed = (total_epochs - ck.epoch) as u64;

        self.run_gated(log, net.as_mut(), scratch, &mut state, true, epoch_size);
        let result = self.finish(log, net.as_ref(), state);
        self.prev = Some(inputs);
        stats.checkpoint_bytes = self.ckpts.iter().map(Checkpoint::approx_bytes).sum();
        (result, stats)
    }

    /// End-of-pass bookkeeping shared by full and resumed passes.
    fn finish(&mut self, log: &TraceLog, net: &dyn NetworkModel, state: PassState) -> ReplayResult {
        self.prev_inject = state.inject.clone();
        self.prev_deliver = state.deliver.clone();
        // One end-of-pass snapshot regardless of `record`: it is what
        // lets the next pass splice when the inputs come back identical
        // (e.g. a converged loop), and costs a single clone.
        self.final_net = net.snapshot();
        ReplayResult::from_times(log, state.inject, state.deliver)
    }

    /// The gated event loop, instrumented: identical state evolution to
    /// `replay::gated_pass_with` (same admissions, same batch stops,
    /// same delivery walk — see the bit-identity tests), plus frontier
    /// tracking and epoch checkpoint recording.
    fn run_gated(
        &mut self,
        log: &TraceLog,
        net: &mut dyn NetworkModel,
        scratch: &mut ReplayScratch,
        state: &mut PassState,
        record: bool,
        epoch_size: usize,
    ) {
        let n = log.len();
        let mut next_mark = (state.delivered / epoch_size + 1) * epoch_size;
        let mut buf = std::mem::take(&mut scratch.buf);
        while state.delivered < n {
            if record && state.delivered >= next_mark {
                let epoch = state.delivered / epoch_size;
                next_mark = (epoch + 1) * epoch_size;
                if let Some(snap) = net.snapshot() {
                    self.ckpts.push(Checkpoint {
                        epoch,
                        delivered: state.delivered,
                        frontier: state.frontier,
                        inject: state.inject.clone(),
                        deliver: state.deliver.clone(),
                        done: state.done.clone(),
                        gate_done: scratch.gate_done.clone(),
                        gate_time: scratch.gate_time.clone(),
                        prev_done: scratch.prev_done.clone(),
                        prev_time: scratch.prev_time.clone(),
                        scheduled: scratch.scheduled.clone(),
                        heap: scratch.heap.iter().map(|&Reverse(e)| e).collect(),
                        net: snap,
                    });
                }
            }
            while let Some(&Reverse((t, i))) = scratch.heap.peek() {
                match net.next_time() {
                    Some(h) if t > h => {
                        // The horizon itself bounds what the network has
                        // admitted us to see; a dirty entry at or before
                        // it could have been admitted here.
                        state.frontier = state.frontier.max(h);
                        break;
                    }
                    ht => {
                        if let Some(h) = ht {
                            state.frontier = state.frontier.max(h);
                        }
                        scratch.heap.pop();
                        let i = i as usize;
                        state.frontier = state.frontier.max(t);
                        state.inject[i] = t;
                        net.inject(t, log.records[i].msg);
                        let nx = scratch.next_in_order[i];
                        if nx != NONE {
                            let nx = nx as usize;
                            scratch.prev_done[nx] = true;
                            scratch.prev_time[nx] = t;
                            if scratch.gate_done[nx] && !scratch.scheduled[nx] {
                                let base = if scratch.gates[nx].is_some() {
                                    scratch.gate_time[nx]
                                } else {
                                    scratch.prev_time[nx]
                                };
                                let t = (base + scratch.delta[nx]).max(scratch.prev_time[nx]);
                                scratch.scheduled[nx] = true;
                                scratch.heap.push(Reverse((t, nx as u32)));
                            }
                        }
                    }
                }
            }
            let stop = scratch.heap.peek().map(|&Reverse((t, _))| t);
            if let Some(s) = stop {
                state.frontier = state.frontier.max(s);
            }
            buf.clear();
            let nt = net.advance_batches(stop, &mut buf);
            if buf.is_empty() && nt.is_none() && scratch.heap.is_empty() {
                panic!("gated replay deadlocked: undelivered messages but nothing pending");
            }
            for d in buf.drain(..) {
                let id = d.msg.id.0 as usize;
                state.deliver[id] = d.delivered_at;
                state.done[id] = true;
                state.delivered += 1;
                state.frontier = state.frontier.max(d.delivered_at);
                for e in scratch.adj_off[id]..scratch.adj_off[id + 1] {
                    let g = scratch.adj[e as usize] as usize;
                    scratch.gate_done[g] = true;
                    scratch.gate_time[g] = d.delivered_at;
                    if scratch.prev_done[g] && !scratch.scheduled[g] {
                        let t = (scratch.gate_time[g] + scratch.delta[g]).max(scratch.prev_time[g]);
                        scratch.scheduled[g] = true;
                        scratch.heap.push(Reverse((t, g as u32)));
                    }
                }
            }
        }
        scratch.buf = buf;
    }
}

/// Reconstruct the readiness state every dirty message would have at
/// checkpoint `ck` under the *new* inputs, or `None` if the checkpoint
/// is not valid for this dirty set.
///
/// Validity requires, for every dirty `c`:
///
/// * `c` was not injected before the checkpoint (otherwise the recorded
///   prefix already depends on `c`'s old inputs), and
/// * if `c` would already be sitting in the heap at the checkpoint, its
///   entry time lies strictly beyond the frontier — so it can neither
///   have been admitted in the prefix nor have changed any batch stop.
///
/// The entry formulas mirror the live loop, simplified by the pass's
/// time-monotonicity (an injection admitted before a delivery event
/// carries a time ≤ that delivery's time): for a gated message whose
/// gate delivered at `gt`, the live `.max(prev_time)` can never win,
/// so the entry is exactly `gt + delta`.
fn plan_for(ck: &Checkpoint, dirty: &[u32], inputs: &Inputs) -> Option<Vec<(usize, Reinit)>> {
    let mut plan = Vec::with_capacity(dirty.len());
    for &c in dirty {
        let c = c as usize;
        if ck.inject[c] != SimTime::MAX {
            return None;
        }
        let g = inputs.gate[c];
        let has_gate = g != NONE;
        let p = inputs.prev[c];
        let p_inj = p != NONE && ck.inject[p as usize] != SimTime::MAX;
        let tp = if p_inj {
            ck.inject[p as usize]
        } else {
            SimTime::ZERO
        };
        let (gate_done, gate_time) = if has_gate {
            let gi = g as usize;
            (
                ck.done[gi],
                if ck.done[gi] {
                    ck.deliver[gi]
                } else {
                    SimTime::ZERO
                },
            )
        } else {
            (true, SimTime::ZERO)
        };
        let entry = if has_gate {
            if gate_done {
                Some(gate_time + inputs.delta[c])
            } else {
                None
            }
        } else if p == NONE {
            Some(inputs.delta[c])
        } else if p_inj {
            Some(tp + inputs.delta[c])
        } else {
            None
        };
        if let Some(t) = entry {
            if t <= ck.frontier {
                return None;
            }
        }
        plan.push((
            c,
            Reinit {
                gate_done,
                gate_time,
                prev_done: p == NONE || has_gate || p_inj,
                prev_time: if p_inj { tp } else { SimTime::ZERO },
                entry,
            },
        ));
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::TraceRecord;
    use crate::replay::replay_sctm_pass_with;
    use sctm_engine::net::{AnalyticNetwork, Message, MsgId, NodeId};
    use sctm_engine::time::PS_PER_NS;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ps(ns * PS_PER_NS)
    }

    /// A small hand-built trace: node 0 sends to 1, 1 replies, then a
    /// tail of independent messages late in the timeline.
    fn toy_log(tail_delta_ns: u64) -> TraceLog {
        let mut records = Vec::new();
        let mut push = |i: u64, src, dst, inj: u64, del: u64, deps: Vec<u64>, prev| {
            records.push(TraceRecord {
                msg: Message {
                    id: MsgId(i),
                    src: NodeId(src),
                    dst: NodeId(dst),
                    class: MsgClass::Control,
                    bytes: 8,
                },
                t_inject: t(inj),
                t_deliver: t(del),
                deps: deps.into_iter().map(MsgId).collect(),
                prev_same_src: prev,
                kind: "toy",
            });
        };
        push(0, 0, 1, 0, 50, vec![], None);
        push(1, 1, 0, 60, 110, vec![0], None);
        push(2, 0, 1, 120, 170, vec![1], Some(MsgId(0)));
        push(3, 2, 3, 500, 560, vec![], None);
        push(4, 3, 2, 500 + tail_delta_ns, 640, vec![3], None);
        TraceLog {
            records,
            capture_net: "toy",
            capture_exec_time: t(700),
        }
    }

    fn fresh_net() -> Box<dyn NetworkModel> {
        Box::new(AnalyticNetwork::new(4, t(20), t(5), 2))
    }

    fn assert_same(a: &ReplayResult, b: &ReplayResult) {
        assert_eq!(a.inject, b.inject);
        assert_eq!(a.deliver, b.deliver);
        assert_eq!(a.est_exec_time, b.est_exec_time);
    }

    #[test]
    fn first_pass_matches_full_replay() {
        let log = toy_log(40);
        let mut incr = IncrReplayer::new().with_epochs(2);
        let mut net = fresh_net();
        let mut scratch = ReplayScratch::default();
        let (r, s) = incr.replay(&log, &mut net, &mut scratch);
        assert_eq!(s.kind, PassKind::Full);
        assert_eq!(s.fallback, Some("first-pass"));

        let mut net2 = fresh_net();
        let full = replay_sctm_pass_with(&log, net2.as_mut(), &mut ReplayScratch::default());
        assert_same(&r, &full);
        assert_eq!(net.stats().delivered, net2.stats().delivered);
    }

    #[test]
    fn identical_inputs_splice() {
        let log = toy_log(40);
        let mut incr = IncrReplayer::new().with_epochs(2);
        let mut net = fresh_net();
        let mut scratch = ReplayScratch::default();
        let (r1, _) = incr.replay(&log, &mut net, &mut scratch);
        let mut net2 = fresh_net();
        let (r2, s2) = incr.replay(&log, &mut net2, &mut scratch);
        assert_eq!(s2.kind, PassKind::Spliced);
        assert_eq!(s2.epochs_replayed, 0);
        assert_same(&r1, &r2);
        assert_eq!(net.stats().delivered, net2.stats().delivered);
    }

    #[test]
    fn tail_dirty_resumes_and_matches() {
        // Recording is deferred until an equal-length diff proves the
        // message ids stable, so the sequence is: first pass (no
        // checkpoints), warm-up dirty pass (full, records), dirty pass
        // (resumes).
        let base = toy_log(40);
        let warm = toy_log(45); // only message 4's delta moves
        let moved = toy_log(50);
        let mut incr = IncrReplayer::new().with_epochs(2);
        let mut scratch = ReplayScratch::default();

        let mut net = fresh_net();
        incr.replay(&base, &mut net, &mut scratch);

        let mut net1 = fresh_net();
        let (_, s1) = incr.replay(&warm, &mut net1, &mut scratch);
        assert_eq!(s1.kind, PassKind::Full);
        assert_eq!(s1.fallback, Some("no-checkpoints"));

        let mut net2 = fresh_net();
        let (r, s) = incr.replay(&moved, &mut net2, &mut scratch);
        assert_eq!(s.dirty, 1);
        assert!(
            matches!(s.kind, PassKind::Resumed { .. }),
            "expected resume, got {:?} (fallback {:?})",
            s.kind,
            s.fallback
        );

        let mut net3 = fresh_net();
        let full = replay_sctm_pass_with(&moved, net3.as_mut(), &mut ReplayScratch::default());
        assert_same(&r, &full);
        assert_eq!(net2.stats().delivered, net3.stats().delivered);
    }

    #[test]
    fn early_dirty_falls_back_to_full() {
        let mut incr = IncrReplayer::new().with_epochs(2);
        let mut scratch = ReplayScratch::default();
        let mut net = fresh_net();
        incr.replay(&toy_log(40), &mut net, &mut scratch);
        // Equal-length warm-up pass: records checkpoints.
        let mut net1 = fresh_net();
        incr.replay(&toy_log(45), &mut net1, &mut scratch);

        // Move the very first message's timing: nothing can be reused.
        let mut early = toy_log(45);
        early.records[1].t_inject = t(70);
        let mut net2 = fresh_net();
        let (r, s) = incr.replay(&early, &mut net2, &mut scratch);
        assert_eq!(s.kind, PassKind::Full);
        assert_eq!(s.fallback, Some("frontier-too-early"));

        let mut net3 = fresh_net();
        let full = replay_sctm_pass_with(&early, net3.as_mut(), &mut ReplayScratch::default());
        assert_same(&r, &full);
    }

    #[test]
    fn length_change_falls_back_and_recovers() {
        let log5 = toy_log(40);
        let mut log6 = toy_log(40);
        log6.records.push(TraceRecord {
            msg: Message {
                id: MsgId(5),
                src: NodeId(1),
                dst: NodeId(2),
                class: MsgClass::Data,
                bytes: 64,
            },
            t_inject: t(650),
            t_deliver: t(700),
            deps: vec![],
            prev_same_src: Some(MsgId(1)),
            kind: "toy",
        });
        let mut incr = IncrReplayer::new().with_epochs(2);
        let mut scratch = ReplayScratch::default();
        let mut net = fresh_net();
        incr.replay(&log5, &mut net, &mut scratch);

        let mut net2 = fresh_net();
        let (r, s) = incr.replay(&log6, &mut net2, &mut scratch);
        assert_eq!(s.kind, PassKind::Full);
        assert_eq!(s.fallback, Some("length-mismatch"));
        let mut net3 = fresh_net();
        let full = replay_sctm_pass_with(&log6, net3.as_mut(), &mut ReplayScratch::default());
        assert_same(&r, &full);

        // Same shape again: splice works once lengths stabilise.
        let mut net4 = fresh_net();
        let (_, s2) = incr.replay(&log6, &mut net4, &mut scratch);
        assert_eq!(s2.kind, PassKind::Spliced);
    }
}
