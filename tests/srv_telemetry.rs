//! Service-telemetry contract (DESIGN.md §12): the `stats` and
//! `metrics` verbs stay truthful under concurrent load, never touch a
//! simulation answer, and speak formats standard tooling understands —
//! versioned JSON snapshots whose counters are monotone poll-to-poll,
//! and Prometheus text exposition 0.0.4 validated here by a real
//! line-grammar checker.
//!
//! CI runs this suite under `SCTM_THREADS=1` and `=4`, so the
//! polling-vs-not byte-identity assertions also pin thread-count
//! independence.

use sctm_obs::reqlog::RequestLog;
use sctm_obs::svc::{SvcPhase, SvcSnapshot};
use sctm_srv::{parse_request, serve_lines, Request, RunRequest, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn run_req(line: &str) -> RunRequest {
    match parse_request(line).expect("parse") {
        Request::Run(r) => *r,
        other => panic!("expected run, got {other:?}"),
    }
}

fn result_of(line: &str) -> &str {
    let at = line
        .find(r#""result":"#)
        .unwrap_or_else(|| panic!("no result object in {line}"));
    &line[at..]
}

/// Answer one control verb through the real protocol path.
fn verb(server: &Server, verb: &str) -> String {
    let mut out = Vec::new();
    serve_lines(format!("{verb}\n").as_bytes(), &mut out, server).expect("serve");
    String::from_utf8(out).expect("utf8")
}

/// Extract `"<field>": N` from the flat object following `"<name>"` in
/// a manifest JSON document.
fn metric_num(doc: &str, name: &str, field: &str) -> Option<f64> {
    let nkey = format!("\"{name}\"");
    let rest = &doc[doc.find(&nkey)? + nkey.len()..];
    let obj_start = rest.find('{')?;
    let obj_end = rest[obj_start..].find('}')? + obj_start;
    let obj = &rest[obj_start..=obj_end];
    let fkey = format!("\"{field}\":");
    let tail = obj[obj.find(&fkey)? + fkey.len()..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn counter(doc: &str, name: &str) -> u64 {
    metric_num(doc, name, "value").unwrap_or_else(|| panic!("no counter {name} in {doc}")) as u64
}

/// Validate a Prometheus text exposition 0.0.4 document line by line:
/// comment grammar, sample grammar, TYPE-before-samples, cumulative
/// bucket monotonicity, and `_count` == the `+Inf` bucket.
fn check_prometheus(text: &str) {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    }
    let mut typed: std::collections::BTreeMap<String, String> = Default::default();
    let mut last_bucket: Option<(String, u64)> = None;
    let mut inf_bucket: std::collections::BTreeMap<String, u64> = Default::default();
    let mut counts: std::collections::BTreeMap<String, u64> = Default::default();

    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut toks = rest.splitn(3, ' ');
            let kw = toks.next().unwrap_or("");
            let name = toks.next().unwrap_or("");
            assert!(
                kw == "HELP" || kw == "TYPE",
                "bad comment keyword in {line:?}"
            );
            assert!(valid_name(name), "bad metric name in {line:?}");
            if kw == "TYPE" {
                let kind = toks.next().unwrap_or("").trim().to_string();
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind.as_str()),
                    "bad TYPE in {line:?}"
                );
                typed.insert(name.to_string(), kind);
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value in {line:?}"));
        let (name, labels) = match name_part.split_once('{') {
            Some((n, l)) => {
                let l = l
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unclosed labels in {line:?}"));
                (n, Some(l))
            }
            None => (name_part, None),
        };
        assert!(valid_name(name), "bad sample name in {line:?}");
        assert!(
            value == "+Inf" || value == "-Inf" || value == "NaN" || value.parse::<f64>().is_ok(),
            "bad value in {line:?}"
        );
        // Every sample belongs to a declared family (histogram samples
        // are declared under the family name without suffix).
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        assert!(typed.contains_key(family), "sample before TYPE: {line:?}");

        if let Some(labels) = labels {
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
                .unwrap_or_else(|| panic!("only le labels expected, got {line:?}"));
            let n: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("bucket count {line:?}"));
            match &last_bucket {
                Some((prev_family, prev_n)) if prev_family == family => {
                    assert!(n >= *prev_n, "bucket counts regress at {line:?}");
                }
                _ => {}
            }
            last_bucket = Some((family.to_string(), n));
            if le == "+Inf" {
                inf_bucket.insert(family.to_string(), n);
            }
        } else if let Some(f) = name.strip_suffix("_count") {
            if typed.get(f).map(String::as_str) == Some("histogram") {
                counts.insert(f.to_string(), value.parse().expect("count"));
            }
        }
    }
    assert!(!typed.is_empty(), "empty exposition");
    for (family, n) in &counts {
        assert_eq!(
            inf_bucket.get(family),
            Some(n),
            "{family}: _count != +Inf bucket"
        );
    }
}

#[test]
fn stats_verb_is_versioned_and_observes_prior_runs() {
    let server = Server::start(ServerConfig::default());
    server.submit_blocking(run_req(
        "run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=v1",
    ));
    let line = verb(&server, "stats");
    assert!(
        line.starts_with(r#"{"status":"ok","version":2,"stats":{"#),
        "{line}"
    );
    assert_eq!(counter(&line, "srv.accepted"), 1);
    assert_eq!(counter(&line, "srv.completed"), 1);
    assert_eq!(counter(&line, "srv.cache.misses"), 1);
    // Histograms land just after the reply send; wait out the tiny race.
    let mut lat = metric_num(&line, "srv.lat.total_us", "count");
    for _ in 0..1000 {
        if lat == Some(1.0) {
            break;
        }
        std::thread::yield_now();
        lat = metric_num(&verb(&server, "stats"), "srv.lat.total_us", "count");
    }
    assert_eq!(lat, Some(1.0));
    // The stats verb counts itself (incremented before rendering).
    assert_eq!(counter(&line, "srv.stats_served"), 1);
    assert!(counter(&verb(&server, "stats"), "srv.stats_served") >= 2);
}

#[test]
fn metrics_verb_emits_valid_prometheus_terminated_by_eof() {
    let server = Server::start(ServerConfig::default());
    server.submit_blocking(run_req(
        "run kernel=fft net=omesh side=2 ops=150 mode=sctm iters=2 id=m1",
    ));
    // Histograms land just after the reply send; wait out the tiny race.
    let mut out = verb(&server, "metrics");
    for _ in 0..1000 {
        if out.contains("sctm_srv_lat_total_us_count 1") {
            break;
        }
        std::thread::yield_now();
        out = verb(&server, "metrics");
    }
    let body = out
        .strip_suffix("# EOF\n")
        .expect("missing # EOF terminator");
    check_prometheus(body);
    assert!(
        body.contains("# TYPE sctm_srv_completed_total counter"),
        "{body}"
    );
    assert!(body.contains("sctm_srv_completed_total 1"), "{body}");
    assert!(
        body.contains("# TYPE sctm_srv_lat_total_us histogram"),
        "{body}"
    );
    assert!(
        body.contains("sctm_srv_lat_total_us_bucket{le=\"+Inf\"} 1"),
        "{body}"
    );
    assert!(body.contains("# TYPE sctm_srv_queue_depth gauge"), "{body}");
}

#[test]
fn http_get_scrape_works_on_the_line_protocol_port() {
    let server = Server::start(ServerConfig::default());
    server.submit_blocking(run_req(
        "run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=h1",
    ));
    let mut out = Vec::new();
    let shutdown = serve_lines(
        b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n".as_slice(),
        &mut out,
        &server,
    )
    .expect("serve");
    assert!(!shutdown);
    let text = String::from_utf8(out).expect("utf8");
    let (head, body) = text.split_once("\r\n\r\n").expect("no header/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{head}"
    );
    assert!(
        head.contains(&format!("Content-Length: {}", body.len())),
        "{head}"
    );
    check_prometheus(body);

    // /stats answers JSON; unknown paths 404 — both one-shot.
    let mut out = Vec::new();
    serve_lines(b"GET /stats HTTP/1.0\r\n\r\n".as_slice(), &mut out, &server).expect("serve");
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("Content-Type: application/json"), "{text}");
    assert!(text.contains(r#""version":2"#), "{text}");
    let mut out = Vec::new();
    serve_lines(b"GET /nope HTTP/1.0\r\n\r\n".as_slice(), &mut out, &server).expect("serve");
    assert!(
        String::from_utf8(out).unwrap().starts_with("HTTP/1.0 404"),
        "unknown path must 404"
    );
}

#[test]
fn counters_are_monotone_while_clients_hammer() {
    let server = Arc::new(Server::start(ServerConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let watched = [
        "srv.accepted",
        "srv.completed",
        "srv.cache.hits",
        "srv.cache.misses",
        "srv.stats_served",
    ];

    std::thread::scope(|s| {
        for client in 0..4usize {
            let server = Arc::clone(&server);
            s.spawn(move || {
                for i in 0..6 {
                    let req = run_req(&format!(
                        "run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=c{client}-{i}"
                    ));
                    server.submit_blocking(req);
                }
            });
        }
        let poller = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut prev = vec![0u64; watched.len()];
                let mut polls = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let line = verb(&server, "stats");
                    for (i, name) in watched.iter().enumerate() {
                        let cur = counter(&line, name);
                        assert!(
                            cur >= prev[i],
                            "{name} regressed {} -> {cur} on poll {polls}",
                            prev[i]
                        );
                        prev[i] = cur;
                    }
                    // Histogram sample counts are monotone too.
                    let lat = metric_num(&line, "srv.lat.total_us", "count").unwrap_or(0.0) as u64;
                    assert!(
                        lat <= counter(&line, "srv.completed") + counter(&line, "srv.timeouts")
                    );
                    check_prometheus(
                        verb(&server, "metrics")
                            .strip_suffix("# EOF\n")
                            .expect("eof"),
                    );
                    polls += 1;
                }
                polls
            })
        };
        // A stopper thread ends the poll loop once all 24 runs have
        // answered, so the poller always sees the quiescent end state.
        let server2 = Arc::clone(&server);
        let stop2 = Arc::clone(&stop);
        s.spawn(move || {
            loop {
                let line = verb(&server2, "stats");
                if counter(&line, "srv.completed") >= 24 {
                    break;
                }
                std::thread::yield_now();
            }
            stop2.store(true, Ordering::Relaxed);
        });
        assert!(poller.join().expect("poller") > 0, "poller never ran");
    });

    let line = verb(&server, "stats");
    assert_eq!(counter(&line, "srv.accepted"), 24);
    assert_eq!(counter(&line, "srv.completed"), 24);
    assert_eq!(
        counter(&line, "srv.cache.hits") + counter(&line, "srv.cache.misses"),
        24
    );
    assert_eq!(
        counter(&line, "srv.cache.misses"),
        1,
        "one workload, one capture"
    );
}

#[test]
fn responses_are_byte_identical_with_aggressive_polling() {
    let reqs: Vec<String> = (0..10)
        .map(|i| {
            let net = ["omesh", "oxbar"][i % 2];
            format!("run kernel=fft net={net} side=2 ops=150 mode=sctm iters=2 id=p{i}")
        })
        .collect();

    let quiet: Vec<String> = {
        let server = Server::start(ServerConfig::default());
        reqs.iter()
            .map(|r| server.submit_blocking(run_req(r)))
            .collect()
    };

    let polled: Vec<String> = {
        let server = Arc::new(Server::start(ServerConfig::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let lines = std::thread::scope(|s| {
            let poller = {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        verb(&server, "stats");
                        verb(&server, "metrics");
                    }
                })
            };
            let lines: Vec<String> = reqs
                .iter()
                .map(|r| server.submit_blocking(run_req(r)))
                .collect();
            stop.store(true, Ordering::Relaxed);
            poller.join().expect("poller");
            lines
        });
        lines
    };

    for (q, p) in quiet.iter().zip(&polled) {
        assert_eq!(result_of(q), result_of(p), "polling changed a result");
    }
}

#[test]
fn snapshot_merge_matches_sequential_recording() {
    // Shard aggregation: recording phases into two snapshots and
    // merging equals recording everything into one.
    let mut a = SvcSnapshot::default();
    let mut b = SvcSnapshot::default();
    let mut whole = SvcSnapshot::default();
    for i in 0..100u64 {
        let v = i * 37 + 1;
        whole.record_us(SvcPhase::Total, v);
        if i % 2 == 0 {
            a.record_us(SvcPhase::Total, v);
        } else {
            b.record_us(SvcPhase::Total, v);
        }
    }
    a.merge(&b);
    assert_eq!(a.phase(SvcPhase::Total), whole.phase(SvcPhase::Total));
}

#[test]
fn request_log_writes_one_line_per_request() {
    let dir = std::env::temp_dir().join(format!("sctm-srvlog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let log = Arc::new(RequestLog::create(&dir).expect("open log"));
    let server = Server::start_logged(ServerConfig::default(), Some(Arc::clone(&log)));

    server.submit_blocking(run_req(
        "run kernel=fft net=omesh side=2 ops=150 mode=classic-trace id=l1",
    ));
    server.submit_blocking(run_req(
        "run kernel=fft net=oxbar side=2 ops=150 mode=classic-trace id=l2",
    ));
    server.drain();

    let text = std::fs::read_to_string(log.path()).expect("read log");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{lines:#?}");
    for (line, id, cache) in [(lines[0], "l1", "miss"), (lines[1], "l2", "hit")] {
        assert!(line.starts_with(r#"{"ts_ms":"#), "{line}");
        for needle in [
            &format!(r#""id":"{id}""#),
            &format!(r#""cache":"{cache}""#),
            &r#""verb":"run""#.to_string(),
            &r#""outcome":"ok""#.to_string(),
            &r#""key":""#.to_string(),
            &r#""queue_us":"#.to_string(),
            &r#""probe_us":"#.to_string(),
            &r#""execute_us":"#.to_string(),
            &r#""total_us":"#.to_string(),
        ] {
            assert!(line.contains(needle.as_str()), "missing {needle} in {line}");
        }
    }
    // Both runs share the workload → same capture-key prefix.
    let key_of = |l: &str| {
        let at = l.find(r#""key":""#).unwrap() + 7;
        l[at..at + 8].to_string()
    };
    assert_eq!(key_of(lines[0]), key_of(lines[1]));
    let _ = std::fs::remove_dir_all(&dir);
}
