//! Deterministic epoch-parallel capture runner.
//!
//! Graphite-style conservative parallel simulation of the full-system
//! CMP: nodes (core + L1 + directory/L2 slice + any memory controller)
//! are sharded round-robin across worker threads, and every shard
//! simulates independently inside an epoch window `[G, G + L)`, where
//! `G` is the global minimum next-event time and `L` is the lookahead —
//! the minimum cross-node latency of the capture network model. At the
//! window edge all shards synchronize on a barrier and exchange the
//! cross-shard protocol messages produced during the epoch.
//!
//! ## Why the result is byte-identical to the sequential run
//!
//! * **Ids**: the simulator numbers messages per source
//!   (`seq·n + src`), so a shard assigns exactly the ids the sequential
//!   run would, without global coordination.
//! * **Safety of barrier exchange**: every cross-shard message sent at
//!   time `t ≥ G` is delivered at `t + latency ≥ G + L` — at or beyond
//!   the window edge — so the destination shard, which has only
//!   processed events strictly before `G + L`, has not yet "missed" it.
//!   Injection uses `inject_backdated` so the delivery time is computed
//!   from the true source-side send time, exactly as in place.
//! * **Per-shard ordering**: at equal times the sequential loop runs
//!   core events before network deliveries, and so does each shard for
//!   its own nodes; nodes interact only through messages, so the
//!   sequential schedule restricted to a shard's nodes *is* the shard's
//!   schedule.
//! * **Aggregation**: all cross-shard statistics are integer sums,
//!   maxes, or exact bucket-wise histogram merges — no floating-point
//!   accumulation order dependence.
//!
//! A fast-forwarding core may overrun the window (it executes up to a
//! quantum past its wakeup without touching the event loop) and send at
//! `t ≥ G + L`; that is still safe — the delivery lands even further in
//! the future — and sequential-identical, because the overrun is a
//! deterministic function of the core's own state.

use crate::protocol::{TraceHook, Workload};
use crate::sim::{CmpConfig, CmpResult, CmpSim, RemoteMsg};
use sctm_engine::net::NetworkModel;
use sctm_engine::par::SpinBarrier;
use sctm_engine::time::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One shard's simulator and trace hook, owned by its worker thread
/// during an epoch and by the coordinator between epochs. The mutex is
/// never contended — the barrier protocol guarantees exclusive phases —
/// it exists to move ownership safely across threads.
struct Shard<H> {
    sim: CmpSim,
    hook: H,
}

/// Run a capture sharded across `nets.len()` worker threads with
/// conservative epoch-barrier synchronization. Produces a result (and
/// per-shard hooks) byte-identical to the sequential
/// [`CmpSim::run`] with the same configuration, network model, and
/// workload — at any shard count.
///
/// `nets` and `workloads` are per-shard clones of the full-size capture
/// network and workload (each shard only exercises its own nodes);
/// `lookahead` must be a positive conservative bound on the minimum
/// cross-node message latency of the network model (see
/// `AnalyticNetwork::min_cross_latency`).
pub fn run_sharded<H: TraceHook + Send>(
    cfg: &CmpConfig,
    nets: Vec<Box<dyn NetworkModel>>,
    workloads: Vec<Box<dyn Workload>>,
    hooks: Vec<H>,
    lookahead: SimTime,
) -> (CmpResult, Vec<H>) {
    let s = nets.len();
    assert!(s >= 1, "need at least one shard");
    assert_eq!(workloads.len(), s, "one workload clone per shard");
    assert_eq!(hooks.len(), s, "one hook per shard");
    assert!(
        lookahead > SimTime::ZERO,
        "epoch parallelism needs a positive lookahead"
    );

    let shards: Vec<Mutex<Shard<H>>> = nets
        .into_iter()
        .zip(workloads)
        .zip(hooks)
        .enumerate()
        .map(|(i, ((net, wl), hook))| {
            let mut sim = CmpSim::new(cfg.clone(), net, wl);
            sim.set_shard(i, s);
            sim.start();
            Mutex::new(Shard { sim, hook })
        })
        .collect();

    // Epoch window edge (exclusive), published by the coordinator while
    // the workers wait at the start-of-epoch barrier.
    let window = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let barrier = SpinBarrier::new(s + 1);

    std::thread::scope(|scope| {
        for me in shards.iter() {
            let barrier = &barrier;
            let window = &window;
            let done = &done;
            scope.spawn(move || {
                loop {
                    barrier.wait(); // coordinator published window / done
                    if done.load(Ordering::Acquire) {
                        return;
                    }
                    let w = SimTime::from_ps(window.load(Ordering::Acquire));
                    {
                        let mut g = me.lock().expect("shard mutex poisoned");
                        let Shard { sim, hook } = &mut *g;
                        sim.step_until(hook, Some(w));
                    }
                    barrier.wait(); // epoch complete
                }
            });
        }

        // Coordinator: between barriers it has exclusive access to every
        // shard — exchange mailboxes, then publish the next window.
        let mut inbox: Vec<RemoteMsg> = Vec::new();
        loop {
            inbox.clear();
            for sh in shards.iter() {
                let mut g = sh.lock().expect("shard mutex poisoned");
                inbox.append(&mut g.sim.take_outbox());
            }
            // Canonical exchange order: (send time, capture id). Ids are
            // globally unique, so this order — and therefore everything
            // downstream — is independent of shard count and thread
            // scheduling.
            inbox.sort_unstable_by_key(|r| (r.at, r.msg.id.0));
            for r in inbox.drain(..) {
                let dst_shard = r.msg.dst.idx() % s;
                let mut g = shards[dst_shard].lock().expect("shard mutex poisoned");
                g.sim.accept_remote(r);
            }
            let g = shards
                .iter()
                .filter_map(|sh| {
                    sh.lock()
                        .expect("shard mutex poisoned")
                        .sim
                        .next_event_time()
                })
                .min();
            match g {
                None => {
                    done.store(true, Ordering::Release);
                    barrier.wait();
                    break;
                }
                Some(g) => {
                    window.store((g + lookahead).as_ps(), Ordering::Release);
                    barrier.wait(); // release workers into the epoch
                    barrier.wait(); // wait for the epoch to complete
                }
            }
        }
    });

    let mut sims = Vec::with_capacity(s);
    let mut hooks = Vec::with_capacity(s);
    for sh in shards {
        let Shard { sim, hook } = sh.into_inner().expect("shard mutex poisoned");
        sims.push(sim);
        hooks.push(hook);
    }
    for sim in &sims {
        sim.finish_checks();
    }
    CmpSim::validate_coherence_sharded(&sims);
    (CmpSim::merged_result(&sims), hooks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{InjectRecord, Op};
    use sctm_engine::net::{AnalyticNetwork, MsgId};

    /// Deterministic per-core workload safe to clone per shard.
    #[derive(Clone)]
    struct Mini {
        cores: usize,
        pos: Vec<usize>,
        len: usize,
    }

    impl Workload for Mini {
        fn num_cores(&self) -> usize {
            self.cores
        }
        fn name(&self) -> &'static str {
            "mini-par"
        }
        fn next_op(&mut self, core: usize) -> Op {
            let i = self.pos[core];
            self.pos[core] += 1;
            if i >= self.len {
                return Op::Halt;
            }
            let phase = self.len / 3;
            if phase > 0 && i % phase == phase - 1 && i / phase < 2 {
                return Op::Barrier((i / phase) as u32);
            }
            match i % 4 {
                0 => Op::Compute(6),
                1 => Op::Load(((core as u64 * 5 + i as u64) % 48) * 64),
                2 => Op::Load(0x2_0000_0000 + core as u64 * 0x8000 + (i as u64 % 16) * 64),
                _ => Op::Store(((i as u64 * 3) % 48) * 64),
            }
        }
    }

    /// Trace hook recording every event, for byte-identity comparison.
    #[derive(Default)]
    struct RecHook {
        injects: Vec<String>,
        delivers: Vec<(u64, u64)>,
    }

    impl TraceHook for RecHook {
        fn on_inject(&mut self, rec: InjectRecord) {
            self.injects.push(format!("{rec:?}"));
        }
        fn on_deliver(&mut self, id: MsgId, at: SimTime) {
            self.delivers.push((id.0, at.as_ps()));
        }
    }

    fn analytic(n: usize) -> AnalyticNetwork {
        AnalyticNetwork::new(n, SimTime::from_ns(10), SimTime::from_ns(2), 10)
    }

    fn run_with_shards(
        side: usize,
        ops: usize,
        s: usize,
    ) -> (CmpResult, Vec<String>, Vec<(u64, u64)>) {
        let cfg = CmpConfig::tiled(side);
        let n = cfg.num_cores();
        let net = analytic(n);
        let lookahead = net.min_cross_latency(&[
            (sctm_engine::net::MsgClass::Control, cfg.ctrl_bytes),
            (sctm_engine::net::MsgClass::Data, cfg.data_bytes),
        ]);
        let wl = Mini {
            cores: n,
            pos: vec![0; n],
            len: ops,
        };
        if s == 0 {
            // Sequential reference through the classic path.
            let mut sim = CmpSim::new(cfg, Box::new(net), Box::new(wl));
            let mut hook = RecHook::default();
            let res = sim.run(&mut hook);
            let mut inj = hook.injects;
            inj.sort_unstable();
            let mut del = hook.delivers;
            del.sort_unstable();
            return (res, inj, del);
        }
        let nets: Vec<Box<dyn NetworkModel>> = (0..s)
            .map(|_| Box::new(net.clone()) as Box<dyn NetworkModel>)
            .collect();
        let workloads: Vec<Box<dyn Workload>> = (0..s)
            .map(|_| Box::new(wl.clone()) as Box<dyn Workload>)
            .collect();
        let hooks: Vec<RecHook> = (0..s).map(|_| RecHook::default()).collect();
        let (res, hooks) = run_sharded(&cfg, nets, workloads, hooks, lookahead);
        let mut inj: Vec<String> = hooks
            .iter()
            .flat_map(|h| h.injects.iter().cloned())
            .collect();
        inj.sort_unstable();
        let mut del: Vec<(u64, u64)> = hooks
            .iter()
            .flat_map(|h| h.delivers.iter().copied())
            .collect();
        del.sort_unstable();
        (res, inj, del)
    }

    #[test]
    fn sharded_run_matches_sequential_event_for_event() {
        let (seq_res, seq_inj, seq_del) = run_with_shards(2, 120, 0);
        for s in [1, 2, 3, 4] {
            let (res, inj, del) = run_with_shards(2, 120, s);
            assert_eq!(
                format!("{seq_res:?}"),
                format!("{res:?}"),
                "result @ {s} shards"
            );
            assert_eq!(seq_inj, inj, "injections @ {s} shards");
            assert_eq!(seq_del, del, "deliveries @ {s} shards");
        }
    }

    #[test]
    fn sharded_run_matches_on_larger_mesh() {
        let (seq_res, seq_inj, seq_del) = run_with_shards(3, 90, 0);
        let (res, inj, del) = run_with_shards(3, 90, 4);
        assert_eq!(format!("{seq_res:?}"), format!("{res:?}"));
        assert_eq!(seq_inj, inj);
        assert_eq!(seq_del, del);
    }
}
