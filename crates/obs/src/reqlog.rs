//! Structured JSONL request logging with size-based rotation.
//!
//! One line per event, one file per daemon (`sctmd.log.jsonl` in the
//! chosen directory). When the active file passes `max_bytes` it is
//! rotated: `.jsonl` → `.jsonl.1` → `.jsonl.2` … up to `keep` old
//! files, oldest dropped. Logging failures never propagate into
//! request handling — I/O errors are swallowed and counted, because a
//! full disk must degrade *observability*, not the service.

use crate::lock_unpoisoned;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Default rotation threshold: 16 MiB per file.
pub const DEFAULT_MAX_BYTES: u64 = 16 * 1024 * 1024;
/// Default number of rotated files kept alongside the active one.
pub const DEFAULT_KEEP: usize = 4;

struct LogInner {
    file: Option<File>,
    written: u64,
    lines: u64,
    rotations: u64,
    io_errors: u64,
}

/// A rotating JSONL log. `Sync` — one mutex guards the writer; callers
/// pass fully formed single-line JSON objects.
pub struct RequestLog {
    path: PathBuf,
    max_bytes: u64,
    keep: usize,
    inner: Mutex<LogInner>,
}

impl RequestLog {
    /// Open (append) `<dir>/sctmd.log.jsonl` with default rotation
    /// limits, creating the directory if needed.
    pub fn create(dir: &Path) -> std::io::Result<RequestLog> {
        RequestLog::with_limits(dir, DEFAULT_MAX_BYTES, DEFAULT_KEEP)
    }

    /// As [`RequestLog::create`] with explicit rotation limits.
    pub fn with_limits(dir: &Path, max_bytes: u64, keep: usize) -> std::io::Result<RequestLog> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("sctmd.log.jsonl");
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(RequestLog {
            path,
            max_bytes: max_bytes.max(1),
            keep,
            inner: Mutex::new(LogInner {
                file: Some(file),
                written,
                lines: 0,
                rotations: 0,
                io_errors: 0,
            }),
        })
    }

    /// Path of the active log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one line. `line` must be a single-line JSON object with
    /// no trailing newline (one is added). Never panics, never
    /// returns an error: failures increment an internal counter.
    pub fn log(&self, line: &str) {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.written >= self.max_bytes {
            self.rotate(&mut inner);
        }
        let Some(file) = inner.file.as_mut() else {
            inner.io_errors += 1;
            return;
        };
        match file.write_all(line.as_bytes()).and_then(|()| {
            file.write_all(b"\n")?;
            file.flush()
        }) {
            Ok(()) => {
                inner.written += line.len() as u64 + 1;
                inner.lines += 1;
            }
            Err(_) => inner.io_errors += 1,
        }
    }

    fn rotate(&self, inner: &mut LogInner) {
        inner.file = None; // close before renaming (Windows-friendly, harmless elsewhere)
        if self.keep == 0 {
            let _ = std::fs::remove_file(&self.path);
        } else {
            let numbered = |n: usize| {
                let mut p = self.path.as_os_str().to_owned();
                p.push(format!(".{n}"));
                PathBuf::from(p)
            };
            let _ = std::fs::remove_file(numbered(self.keep));
            for n in (1..self.keep).rev() {
                let _ = std::fs::rename(numbered(n), numbered(n + 1));
            }
            let _ = std::fs::rename(&self.path, numbered(1));
        }
        inner.rotations += 1;
        inner.written = 0;
        match OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            Ok(f) => inner.file = Some(f),
            Err(_) => inner.io_errors += 1,
        }
    }

    /// Lines successfully written since this handle was opened.
    pub fn lines_written(&self) -> u64 {
        lock_unpoisoned(&self.inner).lines
    }

    /// Rotations performed since this handle was opened.
    pub fn rotations(&self) -> u64 {
        lock_unpoisoned(&self.inner).rotations
    }

    /// Swallowed write/rotate failures since this handle was opened.
    pub fn io_errors(&self) -> u64 {
        lock_unpoisoned(&self.inner).io_errors
    }
}

/// Render one structured log event as a single JSON line. Fields are
/// `(key, value)` pairs with values already JSON-rendered (callers use
/// [`crate::json_escape`] for strings); ordering is preserved as given
/// so logs diff cleanly.
pub fn json_line(fields: &[(&str, String)]) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(k);
        out.push_str("\":");
        out.push_str(v);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "sctm-reqlog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_one_line_per_event() {
        let dir = temp_dir("basic");
        let log = RequestLog::create(&dir).unwrap();
        log.log(&json_line(&[
            ("seq", "1".into()),
            ("outcome", "\"ok\"".into()),
        ]));
        log.log(&json_line(&[("seq", "2".into())]));
        assert_eq!(log.lines_written(), 2);
        assert_eq!(log.io_errors(), 0);
        let text = std::fs::read_to_string(log.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec![r#"{"seq":1,"outcome":"ok"}"#, r#"{"seq":2}"#]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotates_by_size_and_keeps_bounded_history() {
        let dir = temp_dir("rotate");
        // 64-byte threshold, keep 2 old files.
        let log = RequestLog::with_limits(&dir, 64, 2).unwrap();
        for i in 0..40 {
            log.log(&json_line(&[
                ("seq", i.to_string()),
                ("pad", "\"xxxxxxxxxxxx\"".into()),
            ]));
        }
        assert!(log.rotations() >= 2, "rotations = {}", log.rotations());
        assert_eq!(log.io_errors(), 0);
        let one = dir.join("sctmd.log.jsonl.1");
        let two = dir.join("sctmd.log.jsonl.2");
        let three = dir.join("sctmd.log.jsonl.3");
        assert!(one.exists() && two.exists(), "rotated files missing");
        assert!(!three.exists(), "keep=2 must cap history");
        // No line is ever split across a rotation boundary.
        for p in [log.path().to_path_buf(), one, two] {
            for line in std::fs::read_to_string(&p).unwrap().lines() {
                assert!(
                    line.starts_with('{') && line.ends_with('}'),
                    "torn line {line:?} in {p:?}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_landing_exactly_on_the_limit_rotates_on_the_next_write() {
        // The size check runs BEFORE a write: a record whose final byte
        // lands exactly on `max_bytes` stays in the current file, and
        // it is the NEXT write that rotates. Off-by-one here either
        // tears the boundary record across files or rotates one record
        // early forever.
        let line = r#"{"seq":0}"#; // 9 bytes + newline = 10 on disk
        let dir = temp_dir("boundary");
        let log = RequestLog::with_limits(&dir, 30, 2).unwrap();
        for _ in 0..3 {
            log.log(line); // 30 bytes written: exactly max_bytes
        }
        assert_eq!(log.rotations(), 0, "rotated before the limit was exceeded");
        let active = std::fs::read_to_string(log.path()).unwrap();
        assert_eq!(active.len(), 30);
        assert_eq!(active.lines().count(), 3);

        log.log(line); // first byte past the limit: rotate, then write
        assert_eq!(log.rotations(), 1);
        assert_eq!(log.io_errors(), 0);
        let active = std::fs::read_to_string(log.path()).unwrap();
        assert_eq!(active.lines().collect::<Vec<_>>(), vec![line]);
        let rotated = std::fs::read_to_string(dir.join("sctmd.log.jsonl.1")).unwrap();
        assert_eq!(rotated.len(), 30, "boundary record left the full file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_appends_and_counts_existing_bytes() {
        let dir = temp_dir("reopen");
        {
            let log = RequestLog::with_limits(&dir, 1024, 1).unwrap();
            log.log(r#"{"seq":0}"#);
        }
        let log = RequestLog::with_limits(&dir, 1024, 1).unwrap();
        log.log(r#"{"seq":1}"#);
        let text = std::fs::read_to_string(log.path()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_line_preserves_field_order() {
        assert_eq!(
            json_line(&[("b", "2".into()), ("a", "\"x\"".into())]),
            r#"{"b":2,"a":"x"}"#
        );
        assert_eq!(json_line(&[]), "{}");
    }
}
