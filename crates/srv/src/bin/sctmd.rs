//! `sctmd` — the SCTM batch simulation daemon.
//!
//! ```text
//! sctmd --stdin                      # serve requests from stdin (CI mode)
//! sctmd --listen 127.0.0.1:4710     # serve the line protocol over TCP
//! sctmd --stdin --cache-mb 64 --queue 32 --timeout-ms 10000
//! ```
//!
//! One request per line, one JSON response line per request; see
//! `DESIGN.md` §10 and the README quickstart for the protocol.

use sctm_srv::{serve_lines, serve_tcp, Server, ServerConfig};

fn usage() -> ! {
    eprintln!("usage: sctmd (--stdin | --listen ADDR) [--cache-mb N] [--queue N] [--timeout-ms N]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdin_mode = false;
    let mut listen: Option<String> = None;
    let mut cfg = ServerConfig::default();

    let mut i = 0;
    let num = |args: &[String], i: &mut usize| -> u64 {
        *i += 1;
        args.get(*i)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--stdin" => stdin_mode = true,
            "--listen" => {
                i += 1;
                listen = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--cache-mb" => cfg.cache_bytes = (num(&args, &mut i) as usize) << 20,
            "--queue" => cfg.queue_cap = num(&args, &mut i) as usize,
            "--timeout-ms" => cfg.default_timeout_ms = num(&args, &mut i),
            _ => usage(),
        }
        i += 1;
    }
    if stdin_mode == listen.is_some() {
        usage(); // exactly one front-end
    }

    let server = Server::start(cfg);
    if stdin_mode {
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout().lock();
        let res = serve_lines(stdin.lock(), &mut stdout, &server);
        server.drain();
        if let Err(e) = res {
            eprintln!("sctmd: {e}");
            std::process::exit(1);
        }
    } else if let Some(addr) = listen {
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("sctmd: cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("sctmd: listening on {addr}");
        if let Err(e) = serve_tcp(listener, server) {
            eprintln!("sctmd: {e}");
            std::process::exit(1);
        }
    }
}
