//! Span/event recorder.
//!
//! Two clocks, two shapes:
//! * **host-time spans** — wall-clock intervals on real threads (a
//!   capture, one replay iteration, a correction pass, a sweep job),
//!   recorded via the RAII [`SpanGuard`] returned by [`span`];
//! * **sim-time instants** — picosecond-stamped events on simulated
//!   nodes (inject / deliver / arbitrate), recorded via [`sim_event`].
//!
//! Both are keyed by a static category + name so recording never
//! allocates or formats. Each thread appends to its own bounded ring
//! buffer (oldest events overwritten on overflow); buffers register
//! themselves in a global list at first use and survive thread exit, so
//! [`drain`] sees everything recorded since the last drain, including
//! events from `par_map` workers that have already joined.

use crate::{enabled, lock_unpoisoned};
use sctm_engine::time::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity per thread, in events. Overridable through
/// `SCTM_OBS_BUF`; ~48 B/event puts the default around 12 MiB/thread.
const DEFAULT_CAP: usize = 1 << 18;

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A wall-clock interval on a host thread, relative to the process
    /// trace epoch (first instrumentation use).
    HostSpan {
        cat: &'static str,
        name: &'static str,
        /// Small per-process thread ordinal (not the OS tid).
        thread: u32,
        start_ns: u64,
        dur_ns: u64,
    },
    /// An instantaneous simulation-time event at a network node.
    SimInstant {
        cat: &'static str,
        name: &'static str,
        node: u32,
        at_ps: u64,
    },
}

/// Per-thread bounded buffer. Spans and instants live in separate
/// deques (each capped at `cap`): spans are the low-volume skeleton of
/// a trace (phases, iterations, sweep jobs) and must never be evicted
/// by the orders-of-magnitude-larger stream of per-message sim
/// instants a long run produces.
struct Ring {
    spans: VecDeque<TraceEvent>,
    instants: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            spans: VecDeque::new(),
            instants: VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        let q = match ev {
            TraceEvent::HostSpan { .. } => &mut self.spans,
            TraceEvent::SimInstant { .. } => &mut self.instants,
        };
        if q.len() == self.cap {
            q.pop_front();
            self.dropped += 1;
        }
        q.push_back(ev);
    }
}

/// All ring buffers ever created, strong refs so joined worker threads
/// keep their events until the next [`drain`].
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn ring_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SCTM_OBS_BUF")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c: &usize| c >= 16)
            .unwrap_or(DEFAULT_CAP)
    })
}

thread_local! {
    static BUF: (Arc<Mutex<Ring>>, u32) = {
        let ring = Arc::new(Mutex::new(Ring::new(ring_cap())));
        lock_unpoisoned(&RINGS).push(ring.clone());
        (ring, NEXT_THREAD.fetch_add(1, Ordering::Relaxed))
    };
}

#[inline]
fn record(ev: TraceEvent) {
    BUF.with(|(ring, _)| lock_unpoisoned(ring).push(ev));
}

/// This thread's small trace ordinal (allocates one on first use).
fn thread_ordinal() -> u32 {
    BUF.with(|(_, t)| *t)
}

/// RAII guard for a host-time span: records on drop. A no-op (and
/// carries no state) when tracing was disabled at construction.
#[must_use = "a span measures until the guard drops"]
pub struct SpanGuard {
    live: Option<(&'static str, &'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cat, name, start)) = self.live.take() {
            let e = epoch();
            let start_ns = start.saturating_duration_since(e).as_nanos() as u64;
            let dur_ns = start.elapsed().as_nanos() as u64;
            record(TraceEvent::HostSpan {
                cat,
                name,
                thread: thread_ordinal(),
                start_ns,
                dur_ns,
            });
        }
    }
}

/// Open a host-time span. When tracing is disabled this is one relaxed
/// atomic load and the returned guard does nothing on drop.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    epoch(); // pin the epoch no later than the first span start
    SpanGuard {
        live: Some((cat, name, Instant::now())),
    }
}

/// Record an instantaneous sim-time event at `node`. When tracing is
/// disabled this is one relaxed atomic load and a branch — cheap enough
/// for per-message hot paths in the network models.
#[inline]
pub fn sim_event(cat: &'static str, name: &'static str, node: u32, at: SimTime) {
    if !enabled() {
        return;
    }
    record(TraceEvent::SimInstant {
        cat,
        name,
        node,
        at_ps: at.as_ps(),
    });
}

/// Take every buffered event out of every thread's ring, in a
/// deterministic order (time-major within each shape). Dropped-event
/// counts reset alongside.
pub fn drain() -> Vec<TraceEvent> {
    let rings = lock_unpoisoned(&RINGS);
    let mut out = Vec::new();
    for ring in rings.iter() {
        let mut r = lock_unpoisoned(ring);
        out.extend(r.spans.drain(..));
        out.extend(r.instants.drain(..));
        r.dropped = 0;
    }
    out.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
    out
}

type Key<'a> = (u8, u64, u64, &'a str, &'a str);

fn sort_key(ev: &TraceEvent) -> Key<'_> {
    match *ev {
        TraceEvent::HostSpan {
            cat,
            name,
            thread,
            start_ns,
            ..
        } => (0, start_ns, thread as u64, cat, name),
        TraceEvent::SimInstant {
            cat,
            name,
            node,
            at_ps,
        } => (1, at_ps, node as u64, cat, name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn disabled_records_nothing_enabled_records() {
        set_enabled(false);
        drop(span("t", "off"));
        sim_event("t", "off", 0, SimTime::from_ps(1));
        // Other tests in this binary may be recording concurrently, so
        // assert on *our* distinctive events only.
        let mine = |evs: &[TraceEvent]| {
            evs.iter()
                .filter(|e| match e {
                    TraceEvent::HostSpan { cat, .. } | TraceEvent::SimInstant { cat, .. } => {
                        *cat == "t"
                    }
                })
                .count()
        };
        assert_eq!(mine(&drain()), 0);

        set_enabled(true);
        {
            let _s = span("t", "on");
            sim_event("t", "on", 3, SimTime::from_ns(2));
        }
        set_enabled(false);
        let evs = drain();
        assert_eq!(mine(&evs), 2);
        assert!(evs.iter().any(|e| matches!(
            e,
            TraceEvent::SimInstant {
                cat: "t",
                name: "on",
                node: 3,
                at_ps: 2_000
            }
        )));
    }

    #[test]
    fn worker_thread_events_survive_join() {
        set_enabled(true);
        std::thread::spawn(|| {
            sim_event("tj", "worker", 7, SimTime::from_ps(42));
        })
        .join()
        .unwrap();
        set_enabled(false);
        let evs = drain();
        assert!(evs.iter().any(|e| matches!(
            e,
            TraceEvent::SimInstant {
                cat: "tj",
                node: 7,
                at_ps: 42,
                ..
            }
        )));
    }

    #[test]
    fn drain_survives_a_panicking_traced_thread() {
        set_enabled(true);
        // A worker records an event, then panics *while holding its
        // ring lock* — the worst case, poisoning the very mutex drain
        // must later take.
        std::thread::spawn(|| {
            sim_event("tpanic", "recorded", 9, SimTime::from_ps(99));
            BUF.with(|(ring, _)| {
                let _guard = ring.lock().unwrap();
                panic!("traced worker dies mid-record");
            });
        })
        .join()
        .unwrap_err();
        // Recording from a healthy thread still works...
        sim_event("tpanic", "after", 1, SimTime::from_ps(100));
        set_enabled(false);
        // ...and drain neither panics nor loses the dead thread's event.
        let evs = drain();
        assert!(evs.iter().any(|e| matches!(
            e,
            TraceEvent::SimInstant {
                cat: "tpanic",
                name: "recorded",
                node: 9,
                ..
            }
        )));
        assert!(evs.iter().any(|e| matches!(
            e,
            TraceEvent::SimInstant {
                cat: "tpanic",
                name: "after",
                ..
            }
        )));
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let mut r = Ring::new(2);
        for i in 0..5u64 {
            r.push(TraceEvent::SimInstant {
                cat: "t",
                name: "x",
                node: 0,
                at_ps: i,
            });
        }
        assert_eq!(r.dropped, 3);
        assert_eq!(r.instants.len(), 2);
        assert!(matches!(
            r.instants.front(),
            Some(TraceEvent::SimInstant { at_ps: 3, .. })
        ));
    }

    #[test]
    fn instant_overflow_never_evicts_spans() {
        let mut r = Ring::new(4);
        r.push(TraceEvent::HostSpan {
            cat: "t",
            name: "phase",
            thread: 0,
            start_ns: 0,
            dur_ns: 1,
        });
        for i in 0..100u64 {
            r.push(TraceEvent::SimInstant {
                cat: "t",
                name: "x",
                node: 0,
                at_ps: i,
            });
        }
        assert_eq!(r.spans.len(), 1, "span evicted by instant overflow");
        assert_eq!(r.instants.len(), 4);
        assert_eq!(r.dropped, 96);
    }
}
