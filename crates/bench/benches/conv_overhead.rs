//! Convergence-telemetry cost gate (PR8): recording the per-iteration
//! drift ledger must stay within 2% of an otherwise-identical
//! instrumented self-correction run with the ledger switched off
//! (`obs::set_conv_enabled(false)`), and CI enforces
//! `benchcmp ratio conv_overhead/telemetry_on conv_overhead/telemetry_off --max 1.02`
//! on the records this binary writes. Both conditions run with global
//! observability *on*, so the ratio isolates exactly what this
//! subsystem adds — general tracing cost is `obs_overhead`'s gate, and
//! the fully-disabled path (where the tracker is never built and the
//! verdict rides on arithmetic the loop already does) is held by the
//! suite-wide `benchcmp diff` against the committed baseline.
//!
//! Like `srv_stats_overhead`, a 2% gate cannot be resolved by
//! sequential A-then-B timing under host noise, so this is NOT a
//! criterion bench: off and on windows interleave across one time
//! span, each window's sample is the min batch mean (noise only adds
//! time), and the medians across windows form the gated ratio. Obs
//! state (trace buffer, conv ledger, iteration telemetry) is drained
//! between windows, outside the timed region, so accumulation in one
//! window never taxes the next.

use std::time::Instant;

use sctm_core::{Experiment, NetworkKind, RunSpec, SystemConfig};
use sctm_obs as obs;
use sctm_prof::benchjson::{BenchFile, BenchRecord};
use sctm_workloads::Kernel;

/// Paired windows per condition; medians are taken across these.
const WINDOWS: usize = 30;
/// Batches per window; a window's sample is the MIN batch mean.
const BATCHES: usize = 6;
/// Full self-correction runs per batch.
const PER_BATCH: usize = 8;

fn one_run() -> f64 {
    let exp = Experiment::new(SystemConfig::new(2, NetworkKind::Omesh), Kernel::Fft).with_ops(120);
    let spec = RunSpec::self_correction(3);
    let out = exp.execute(&spec).expect("valid spec");
    std::hint::black_box(out.report.exec_time.as_ps() as f64)
}

/// Min batch-mean ns/run over one window.
fn window_ns() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..PER_BATCH {
            std::hint::black_box(one_run());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / PER_BATCH as f64);
    }
    best
}

/// Drop everything the instrumented windows accumulated so buffer
/// growth can't bleed into later windows. Runs outside timed regions.
fn drain_obs_state() {
    std::hint::black_box(obs::drain());
    obs::reset_conv();
    obs::reset_iterations();
    obs::reset_global();
}

fn record(id: &str, mut samples: Vec<f64>) -> BenchRecord {
    samples.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
    let median = if samples.len() % 2 == 1 {
        samples[samples.len() / 2]
    } else {
        (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2.0
    };
    BenchRecord {
        id: id.to_string(),
        samples: samples.len() as u64,
        min_ns: samples[0],
        p25_ns: q(0.25),
        median_ns: median,
        p75_ns: q(0.75),
        max_ns: samples[samples.len() - 1],
    }
}

fn main() {
    // Global observability stays on for the whole run; only the conv
    // ledger toggles between windows.
    obs::set_enabled(true);

    // Steady-state warm-up before any timed window, in both modes so
    // lazily initialised obs state is paid for up front.
    obs::set_conv_enabled(false);
    for _ in 0..PER_BATCH {
        std::hint::black_box(one_run());
    }
    obs::set_conv_enabled(true);
    for _ in 0..PER_BATCH {
        std::hint::black_box(one_run());
    }
    drain_obs_state();

    let mut off = Vec::with_capacity(WINDOWS);
    let mut on = Vec::with_capacity(WINDOWS);
    for _ in 0..WINDOWS {
        obs::set_conv_enabled(false);
        off.push(window_ns());
        drain_obs_state();
        obs::set_conv_enabled(true);
        on.push(window_ns());
        drain_obs_state();
    }
    obs::set_enabled(false);
    obs::set_conv_enabled(true);

    let mut file = BenchFile::new();
    file.benches
        .push(record("conv_overhead/telemetry_off", off));
    file.benches.push(record("conv_overhead/telemetry_on", on));
    for b in &file.benches {
        println!(
            "{:<40} time: [{:.3} µs {:.3} µs {:.3} µs]  ({} interleaved windows, min of {} x {}-run batches)",
            b.id,
            b.min_ns / 1e3,
            b.median_ns / 1e3,
            b.max_ns / 1e3,
            b.samples,
            BATCHES,
            PER_BATCH
        );
    }
    println!(
        "telemetry_on / telemetry_off median ratio: {:.4}",
        file.benches[1].median_ns / file.benches[0].median_ns
    );

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--bench-json" {
            let path = args.next().expect("--bench-json needs a path");
            std::fs::write(&path, file.to_json()).expect("write bench json");
            println!("conv_overhead: wrote bench JSON to {path}");
        }
    }
}
